"""Byzantine behaviors, masking quorums, and the adversary/watcher contract.

Four layers:

* theory — the hypergeometric b-masking sizing rule (b=0 identity with
  Lemma 5.2, monotonicity, infeasibility);
* unit — the MaskingStrategy vote filter on a stub inner strategy
  (threshold, masked, found_corrupt, version ordering) and the
  ByzantineRegistry's wrappers;
* mutation — every undefended Byzantine behavior trips an invariant
  watcher (lie/capture -> fabricated-value, drop/stale ->
  intersection-below-bound), proving the watchers can catch each
  adversary;
* defence — the same adversaries under a sized MaskingStrategy stay
  watcher-clean with zero corrupt reads.

Watcher hubs here are built in record mode (no auditor) so the tests
behave identically under ``REPRO_AUDIT=strict``: the point is to
*count* violations, not to die on the first one.
"""

import math
import random

import pytest

from repro.analysis.intersection import (
    masking_intersection_probability,
    masking_miss_probability_exact,
    masking_quorum_size,
    masking_vote_threshold,
    miss_probability_exact,
    symmetric_quorum_size,
)
from repro.core import MaskingStrategy, ProbabilisticBiquorum, parse_masking_name
from repro.core.strategies import AccessResult, AccessStrategy, RandomStrategy
from repro.faults import run_fault_campaign
from repro.faults.byzantine import (
    BYZANTINE_BEHAVIORS,
    CaptureSpec,
    ensure_byzantine,
    fabricated_reply,
)
from repro.obs import AuditError
from repro.membership import RandomMembership
from repro.obs.watch import WatcherHub, builtin_watchers
from repro.services import LocationService
from repro.simnet import NetworkConfig, SimNetwork

EPSILON = 0.05


# ---------------------------------------------------------------------------
# Theory: the b-masking sizing rule
# ---------------------------------------------------------------------------


class TestMaskingSizing:
    def test_b0_reduces_to_lemma_5_2(self):
        for n in (40, 100, 250):
            q = symmetric_quorum_size(n, EPSILON)
            # b=0 masking miss == the Lemma 5.2 exact empty-intersection
            # probability, for any quorum size.
            assert masking_miss_probability_exact(q, q, n, 0) == pytest.approx(
                miss_probability_exact(q, q, n))
            # The exact-bisection size can only undercut the asymptotic
            # sqrt(n ln(1/eps)) formula, never exceed it — and it still
            # honours epsilon.
            q0 = masking_quorum_size(n, EPSILON, 0)
            assert q0 <= q
            assert masking_miss_probability_exact(q0, q0, n, 0) <= EPSILON

    def test_size_grows_with_b(self):
        sizes = [masking_quorum_size(100, EPSILON, b) for b in range(5)]
        assert sizes == sorted(sizes)
        assert sizes[4] > sizes[0]

    def test_sized_quorums_honour_epsilon(self):
        for n, b in ((60, 3), (100, 5), (200, 8)):
            q = masking_quorum_size(n, EPSILON, b)
            assert masking_intersection_probability(q, q, n, b) >= 1 - EPSILON
            # And q is minimal: one less violates the bound.
            assert masking_intersection_probability(
                q - 1, q - 1, n, b) < 1 - EPSILON

    def test_infeasible_configurations_raise(self):
        # n < 2b + 1: no quorum can guarantee a 2b+1 intersection.
        with pytest.raises(ValueError):
            masking_quorum_size(5, EPSILON, 3)
        # n >= 2b + 1 is always feasible (q = n intersects in full).
        assert masking_quorum_size(7, 1e-12, 3) == 7

    def test_vote_threshold(self):
        assert masking_vote_threshold(0) == 1
        assert masking_vote_threshold(4) == 5

    def test_name_roundtrip(self):
        assert parse_masking_name("MASKING[b=3,RANDOM]") == (3, "RANDOM")
        assert parse_masking_name("RANDOM") is None


# ---------------------------------------------------------------------------
# Unit: the vote filter on a stub inner strategy
# ---------------------------------------------------------------------------


class _ProbeAll(AccessStrategy):
    """Probes a fixed node list; replies come from a dict."""

    name = "STUB"
    uniform_random = True

    def __init__(self, replies):
        self.replies = replies

    def _advertise(self, net, origin, store_fn, target_size):
        raise NotImplementedError

    def _lookup(self, net, origin, probe_fn, target_size):
        result = AccessResult(strategy=self.name, kind="lookup")
        for node in sorted(self.replies):
            reply = probe_fn(node)
            result.quorum.append(node)
            if reply is not None and not result.found:
                result.found = True
                result.hit_node = node
                result.hit_value = reply
        return result


def _masked_lookup(replies, b, threshold=None):
    strategy = MaskingStrategy(_ProbeAll(replies), b, threshold=threshold)

    def probe(node):
        return replies[node]
    probe.access_vote_key = lambda reply: reply[0]
    probe.access_version_of = lambda reply: reply[1]
    return strategy._lookup(None, 0, probe, len(replies))


class TestMaskingVoteFilter:
    def test_corroborated_value_wins(self):
        result = _masked_lookup(
            {1: ("v", 3), 2: ("v", 3), 3: None, 4: ("x", 9)}, b=1)
        assert result.verdict == "found"
        assert result.hit_value == ("v", 3)
        assert not result.found_corrupt and not result.masked

    def test_lone_fabrication_is_masked(self):
        result = _masked_lookup({1: ("x", 99), 2: None, 3: None}, b=1)
        assert result.verdict == "masked"
        assert result.masked and not result.found
        assert result.hit_node is None and result.hit_value is None

    def test_all_miss_is_a_plain_miss(self):
        result = _masked_lookup({1: None, 2: None}, b=1)
        assert result.verdict == "miss"
        assert not result.masked

    def test_conflicting_confirmed_values_flag_corrupt(self):
        # Adversary above budget: two values both reach the threshold.
        result = _masked_lookup(
            {1: ("v", 1), 2: ("v", 1), 3: ("w", 7), 4: ("w", 7)}, b=1)
        assert result.found and result.found_corrupt
        assert result.verdict == "found_corrupt"

    def test_votes_aggregate_by_value_across_versions(self):
        # Refresh-skewed honest replicas corroborate; newest version is
        # returned.
        result = _masked_lookup(
            {1: ("v", 1), 2: ("v", 5), 3: ("v", 3)}, b=2)
        assert result.verdict == "found"
        assert result.hit_value == ("v", 5)

    def test_b0_accepts_first_reply(self):
        result = _masked_lookup({1: ("v", 1)}, b=0)
        assert result.verdict == "found"

    def test_custom_threshold_overrides_default(self):
        result = _masked_lookup({1: ("v", 1), 2: ("v", 1)}, b=4, threshold=2)
        assert result.verdict == "found"

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MaskingStrategy(_ProbeAll({}), -1)
        with pytest.raises(ValueError):
            MaskingStrategy(_ProbeAll({}), 1, threshold=0)


# ---------------------------------------------------------------------------
# Unit: the ByzantineRegistry wrappers
# ---------------------------------------------------------------------------


class TestByzantineRegistry:
    def test_fabrications_are_node_salted(self):
        assert fabricated_reply(3) != fabricated_reply(4)

    def test_lie_mode_fabricates_probe_replies(self):
        net = SimNetwork(NetworkConfig(n=10, seed=1))
        reg = ensure_byzantine(net)
        reg.attach([3], "lie")
        probed = reg.wrap_probe(lambda node: None)
        assert probed(3) == fabricated_reply(3)
        assert probed(4) is None

    def test_drop_mode_discards_stores_and_denies_probes(self):
        net = SimNetwork(NetworkConfig(n=10, seed=1))
        reg = ensure_byzantine(net)
        reg.attach([2], "drop")
        stored = []
        wrapped_store = reg.wrap_store(stored.append)
        wrapped_store(2)   # acked but discarded
        wrapped_store(5)
        assert stored == [5]
        probed = reg.wrap_probe(lambda node: ("v", 1))
        assert probed(2) is None
        assert probed(5) == ("v", 1)

    def test_detach_restores_honest_behavior(self):
        net = SimNetwork(NetworkConfig(n=10, seed=1))
        reg = ensure_byzantine(net)
        reg.attach([1, 2], "lie")
        assert reg.active
        reg.detach([1, 2], "lie")
        assert not reg.active
        probed = reg.wrap_probe(lambda node: None)
        assert probed(1) is None

    def test_unknown_behavior_rejected(self):
        net = SimNetwork(NetworkConfig(n=10, seed=1))
        with pytest.raises(ValueError):
            ensure_byzantine(net).attach([1], "gaslight")


# ---------------------------------------------------------------------------
# Mutation + defence: end-to-end adversary vs watcher contract
# ---------------------------------------------------------------------------


def _adversarial_run(behavior, *, n=60, seed=5, b=None, n_byz=None,
                     n_keys=4, n_lookups=200, backend=None):
    """One seeded workload with ``behavior`` active from before the
    advertises; returns (hub, corrupt_reads, lookups, hits, masked)."""
    net = SimNetwork(NetworkConfig(n=n, avg_degree=10.0, seed=seed))
    # Record-mode hub: identical behavior under REPRO_AUDIT=strict.
    hub = WatcherHub(builtin_watchers(n=net.n_alive), auditor=None)
    trace = net.trace
    if not trace.enabled:
        trace.enable(memory=False)
    hub.attach(trace)

    if b is not None:
        size = masking_quorum_size(n, EPSILON, b)
    else:
        size = symmetric_quorum_size(n, EPSILON)
    view = max(size, int(round(2.0 * math.sqrt(n))))
    membership = RandomMembership(net, view_size=view)
    inner = RandomStrategy(membership)
    if backend is not None:
        inner.set_access_backend(backend)
    lookup = MaskingStrategy(inner, b) if b is not None else inner
    biquorum = ProbabilisticBiquorum(
        net, advertise=RandomStrategy(membership), lookup=lookup,
        advertise_size=size, lookup_size=size,
        adjust_to_network_size=False)
    service = LocationService(biquorum, enable_caching=False)

    reg = ensure_byzantine(net)
    rng = random.Random(seed + 1)
    victims = rng.sample(range(n), n_byz)
    reg.attach(victims, behavior)

    for i in range(n_keys):
        service.advertise(net.random_alive_node(rng), f"k{i}", f"value-{i}")
    wrng = random.Random(seed + 2)
    lookups = hits = corrupt = masked = 0
    for i in range(n_lookups):
        net.advance(0.05)
        key = f"k{i % n_keys}"
        receipt = service.lookup(net.random_alive_node(wrng), key)
        lookups += 1
        if receipt.found:
            hits += 1
            if receipt.value != f"value-{int(key[1:])}":
                corrupt += 1
        elif receipt.access is not None and receipt.access.masked:
            masked += 1
    hub.finish()
    hub.detach()
    membership.stop()
    return hub, corrupt, lookups, hits, masked


def _codes(hub):
    return {v.code for v in hub.violations}


class TestUndefendedAdversariesAreCaught:
    """Mutation tests: each behavior, injected into an undefended
    deployment, must trip the specific invariant it breaks."""

    def test_lie_trips_fabricated_value(self):
        hub, corrupt, *_ = _adversarial_run("lie", n_byz=12)
        assert "fabricated-value" in _codes(hub)
        assert corrupt > 0  # the adversary really did damage

    def test_capture_trips_fabricated_value(self):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10.0, seed=5))
        hub = WatcherHub(builtin_watchers(n=net.n_alive), auditor=None)
        net.trace.enable(memory=False)
        hub.attach(net.trace)
        size = symmetric_quorum_size(60, EPSILON)
        membership = RandomMembership(net)
        biquorum = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=RandomStrategy(membership),
            advertise_size=size, lookup_size=size,
            adjust_to_network_size=False)
        service = LocationService(biquorum, enable_caching=False)
        reg = ensure_byzantine(net)
        reg.add_capture(CaptureSpec(fraction=0.5, rng=random.Random(3),
                                    key="k0"))
        rng = random.Random(4)
        service.advertise(net.random_alive_node(rng), "k0", "value-0")
        corrupt = 0
        for _ in range(60):
            net.advance(0.05)
            receipt = service.lookup(net.random_alive_node(rng), "k0")
            if receipt.found and receipt.value != "value-0":
                corrupt += 1
        hub.finish()
        hub.detach()
        membership.stop()
        assert "fabricated-value" in _codes(hub)
        assert corrupt > 0

    @pytest.mark.parametrize("behavior", ["drop", "stale"])
    def test_silent_shrink_trips_intersection_bound(self, behavior):
        # 80% of replicas acking-then-discarding (or serving nothing)
        # starves the hypergeometric floor; the sequential test must
        # notice the statistically-impossible hit shortfall.
        hub, _, lookups, hits, _ = _adversarial_run(
            behavior, n_byz=48, n_lookups=200)
        assert "intersection-below-bound" in _codes(hub)
        assert hits < lookups  # the shrink was real

    def test_behavior_list_is_covered(self):
        assert set(BYZANTINE_BEHAVIORS) == {"lie", "stale", "drop", "capture"}


class TestMaskedAdversariesAreDefeated:
    """Defence tests: the same adversaries, within a sized masking
    budget, cause zero corrupt reads and keep every watcher silent."""

    @pytest.mark.parametrize("behavior", ["lie", "stale", "drop"])
    def test_within_budget_adversary_is_clean(self, behavior):
        hub, corrupt, lookups, hits, masked = _adversarial_run(
            behavior, b=6, n_byz=5, n_lookups=120)
        assert hub.violations == []
        assert corrupt == 0
        # Availability holds: masked reads stay within the sizing eps
        # (binomial slack on top of the 0.05 bound).
        assert masked <= math.ceil(2 * EPSILON * lookups)
        assert hits > 0

    def test_masked_capture_campaign_is_clean(self):
        report = run_fault_campaign(
            campaign="capture", n=60, seed=7, n_keys=4, n_lookups=60,
            watch=True, masking_b=6)
        assert report.watch_violations == []
        assert report.corrupt_reads == 0
        assert report.masking_b == 6
        assert report.hits > 0

    def test_undefended_capture_campaign_is_caught(self):
        # The builtin capture campaign with no masking defence: the
        # watchers must flag it.  Under REPRO_AUDIT=strict the first
        # fabrication raises mid-run — equally "caught".
        try:
            report = run_fault_campaign(
                campaign="capture", n=60, seed=7, n_keys=4, n_lookups=60,
                watch=True)
        except AuditError:
            return
        assert report.watch_violations
        assert any("fabricated-value" in str(v)
                   for v in report.watch_violations)
        assert report.corrupt_reads > 0

    @pytest.mark.parametrize("backend", ["sequential", "batched"])
    def test_masking_runs_under_both_access_backends(self, backend):
        hub, corrupt, lookups, hits, masked = _adversarial_run(
            "lie", b=4, n_byz=3, n_lookups=60, backend=backend)
        assert hub.violations == []
        assert corrupt == 0
        assert hits > 0
