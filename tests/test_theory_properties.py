"""Property-based tests for the paper's Section 5 theory layer.

Three results get the hypothesis treatment:

* **Corollary 5.3** — any sizing with ``|Qa| * |Ql| >= n ln(1/eps)``
  guarantees a miss probability at most ``eps``, in the *exact*
  hypergeometric model (the paper's bound is the weaker exponential
  form, so the exact model must clear it with room to spare).
* **Lemma 5.6** — the closed-form optimal lookup/advertise size ratio
  really minimizes total workload cost over a grid of alternatives that
  keep the same intersection guarantee.
* **Lemma 5.2 (mix-and-match)** — against a uniform RANDOM advertise
  quorum, the miss probability of an *arbitrary* fixed lookup set
  depends only on its size, never its structure: adversarially clumped
  or spread lookup sets all match the hypergeometric prediction.
"""

import math
import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.analysis import (  # noqa: E402
    miss_probability_exact,
    required_quorum_product,
)
from repro.analysis.costs import (  # noqa: E402
    optimal_size_ratio,
    total_cost,
)


def _hypergeometric_miss(qa: int, ql: int, n: int) -> float:
    """Reference: C(n - ql, qa) / C(n, qa)."""
    if qa + ql > n:
        return 0.0
    return math.comb(n - ql, qa) / math.comb(n, qa)


class TestCorollary53:
    @given(n=st.integers(8, 500), eps=st.floats(0.01, 0.5),
           split=st.floats(0.25, 4.0))
    @settings(max_examples=120, deadline=None)
    def test_product_sizing_guarantees_epsilon(self, n, eps, split):
        # Split the required product |Qa| * |Ql| >= n ln(1/eps) across the
        # two sides at an arbitrary ratio; the guarantee must hold for
        # every split, not just the symmetric one.
        product = required_quorum_product(n, eps)
        qa = min(n, max(1, math.ceil(math.sqrt(product * split))))
        ql = min(n, max(1, math.ceil(math.sqrt(product / split))))
        if qa * ql < product:  # the caps at n can undercut the product
            return
        assert miss_probability_exact(qa, ql, n) <= eps + 1e-9

    @given(n=st.integers(8, 500), eps=st.floats(0.01, 0.5))
    @settings(max_examples=80, deadline=None)
    def test_exact_model_beats_exponential_bound(self, n, eps):
        # The hypergeometric (without-replacement) miss is never worse
        # than the exp(-qa*ql/n) bound the paper's sizing rule inverts.
        product = required_quorum_product(n, eps)
        q = min(n, max(1, math.ceil(math.sqrt(product))))
        exact = miss_probability_exact(q, q, n)
        bound = math.exp(-q * q / n)
        assert exact <= bound + 1e-12


class TestLemma56:
    @given(tau=st.floats(0.1, 10.0), cost_a=st.floats(0.5, 20.0),
           cost_l=st.floats(0.5, 20.0), n=st.integers(50, 2000),
           eps=st.floats(0.01, 0.3))
    @settings(max_examples=80, deadline=None)
    def test_closed_form_ratio_minimizes_total_cost(self, tau, cost_a,
                                                    cost_l, n, eps):
        # Fix the intersection guarantee (|Qa| * |Ql| = product) and the
        # workload mix tau = lookups / advertises; sweep the ratio
        # r = |Ql| / |Qa| on a log grid around the closed form.  The
        # lemma's r* must be the grid's argmin.
        product = required_quorum_product(n, eps)
        n_advertise = 1000
        n_lookup = max(1, int(round(tau * n_advertise)))

        def cost_at(ratio: float) -> float:
            qa = math.sqrt(product / ratio)
            ql = math.sqrt(product * ratio)
            return total_cost(n_advertise, qa, cost_a, n_lookup, ql, cost_l)

        r_star = optimal_size_ratio(tau, cost_a, cost_l)
        grid = [r_star * math.exp(step / 4.0) for step in range(-12, 13)]
        best = min(grid, key=cost_at)
        # r* sits at the grid's center; the argmin must be it (up to
        # floating-point ties on neighboring grid points).
        assert cost_at(r_star) <= cost_at(best) * (1 + 1e-9)

    @given(tau=st.floats(0.1, 10.0), cost=st.floats(0.5, 20.0))
    @settings(max_examples=40, deadline=None)
    def test_symmetric_costs_balance_by_workload(self, tau, cost):
        # Equal per-node costs: the ratio reduces to 1/tau — advertise
        # rarely, advertise big.
        assert optimal_size_ratio(tau, cost, cost) == pytest.approx(1 / tau)


class TestLemma52MixAndMatch:
    @staticmethod
    def _empirical_miss(n, qa, lookup_set, rng, trials=4000):
        population = list(range(n))
        misses = 0
        for _ in range(trials):
            advertise = rng.sample(population, qa)
            if not lookup_set.intersection(advertise):
                misses += 1
        return misses / trials

    @pytest.mark.slow
    @given(n=st.integers(30, 120), qa_frac=st.floats(0.15, 0.5),
           ql_frac=st.floats(0.1, 0.4), seed=st.integers(0, 2**16))
    @settings(max_examples=25, deadline=None)
    def test_structured_lookup_sets_match_hypergeometric(self, n, qa_frac,
                                                         ql_frac, seed):
        # Any fixed lookup set — contiguous block, evenly spaced comb, or
        # uniformly drawn — has the same miss probability against a
        # RANDOM advertise quorum: only |Ql| matters (Lemma 5.2).
        qa = max(1, int(qa_frac * n))
        ql = max(1, int(ql_frac * n))
        rng = random.Random(seed)
        expected = _hypergeometric_miss(qa, ql, n)
        spacing = max(1, n // ql)
        shapes = {
            "block": set(range(ql)),
            "comb": set((i * spacing) % n for i in range(ql)),
            "uniform": set(rng.sample(range(n), ql)),
        }
        tolerance = 4 * math.sqrt(max(expected * (1 - expected), 1e-4)
                                  / 4000)
        for name, lookup_set in shapes.items():
            if len(lookup_set) != ql:  # comb may alias on tiny n
                continue
            measured = self._empirical_miss(n, qa, lookup_set, rng)
            assert abs(measured - expected) <= tolerance, (
                f"{name} lookup set deviates: {measured} vs {expected}")

    def test_exact_model_is_structure_free_by_symmetry(self):
        # The exact formula depends only on sizes — spelled out here so
        # the empirical test above is clearly checking the simulator's
        # uniformity, not the formula.
        assert miss_probability_exact(5, 7, 40) == pytest.approx(
            _hypergeometric_miss(5, 7, 40))
        assert miss_probability_exact(7, 5, 40) == pytest.approx(
            _hypergeometric_miss(5, 7, 40))  # symmetric in qa/ql


from repro.analysis.leases import (  # noqa: E402
    lease_survival_probability,
    lease_ttl_for_churn,
    min_survival_for_epsilon,
    stale_read_probability_bound,
    stale_read_probability_exact,
)


class TestTimedLeases:
    """The timed-quorum lease analysis composed with Lemma 5.2."""

    @given(n=st.integers(8, 300), qa_frac=st.floats(0.05, 0.6),
           ql_frac=st.floats(0.05, 0.6), survival=st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_bound_dominates_exact(self, n, qa_frac, ql_frac, survival):
        qa = max(1, int(qa_frac * n))
        ql = max(1, int(ql_frac * n))
        exact = stale_read_probability_exact(qa, ql, n, survival)
        bound = stale_read_probability_bound(qa, ql, n, survival)
        assert exact <= bound + 1e-9

    @given(n=st.integers(8, 300), qa_frac=st.floats(0.05, 0.6),
           ql_frac=st.floats(0.05, 0.6))
    @settings(max_examples=100, deadline=None)
    def test_full_survival_reduces_to_lemma_52(self, n, qa_frac, ql_frac):
        # Infinite TTL and no churn (survival = 1) collapse the lease
        # model onto the plain biquorum: the exact form becomes the
        # hypergeometric miss, the bound becomes exp(-qa*ql/n).
        qa = max(1, int(qa_frac * n))
        ql = max(1, int(ql_frac * n))
        assert stale_read_probability_exact(qa, ql, n, 1.0) == \
            pytest.approx(miss_probability_exact(qa, ql, n))
        assert stale_read_probability_bound(qa, ql, n, 1.0) == \
            pytest.approx(math.exp(-qa * ql / n))

    @given(n=st.integers(8, 300), qa_frac=st.floats(0.05, 0.6),
           ql_frac=st.floats(0.05, 0.6),
           lo=st.floats(0.0, 1.0), hi=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_stale_probability_monotone_in_survival(self, n, qa_frac,
                                                    ql_frac, lo, hi):
        if lo > hi:
            lo, hi = hi, lo
        qa = max(1, int(qa_frac * n))
        ql = max(1, int(ql_frac * n))
        assert (stale_read_probability_exact(qa, ql, n, hi)
                <= stale_read_probability_exact(qa, ql, n, lo) + 1e-9)
        assert (stale_read_probability_bound(qa, ql, n, hi)
                <= stale_read_probability_bound(qa, ql, n, lo) + 1e-12)

    @given(rate=st.floats(1e-5, 1.0), survival=st.floats(0.5, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_ttl_inversion_honours_survival_floor(self, rate, survival):
        # Any age inside the derived lease keeps holder survival at or
        # above the floor (when the clamp didn't truncate the inversion).
        ttl = lease_ttl_for_churn(rate, survival, min_ttl=1e-9,
                                  max_ttl=1e12)
        age = ttl * 0.999999
        assert lease_survival_probability(age, rate, ttl) >= \
            survival - 1e-7

    @given(lo_rate=st.floats(1e-4, 1.0), factor=st.floats(1.0, 100.0),
           survival=st.floats(0.5, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_ttl_monotone_in_churn(self, lo_rate, factor, survival):
        kw = dict(min_ttl=1e-9, max_ttl=1e12)
        assert (lease_ttl_for_churn(lo_rate * factor, survival, **kw)
                <= lease_ttl_for_churn(lo_rate, survival, **kw) + 1e-12)

    @given(n=st.integers(8, 300), qa_frac=st.floats(0.1, 0.6),
           ql_frac=st.floats(0.1, 0.6), eps=st.floats(0.01, 0.5))
    @settings(max_examples=120, deadline=None)
    def test_min_survival_meets_epsilon(self, n, qa_frac, ql_frac, eps):
        qa = max(1, int(qa_frac * n))
        ql = max(1, int(ql_frac * n))
        p = min_survival_for_epsilon(qa, ql, n, eps)
        assert 0.0 <= p <= 1.0
        if p < 1.0:  # feasible: the bound at p must clear eps
            assert stale_read_probability_bound(qa, ql, n, p) <= \
                eps + 1e-9
