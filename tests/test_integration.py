"""Cross-cutting integration tests: public API, packet-level vs graph-level
fidelity, and full advertise/lookup pipelines under adverse conditions."""

import math
import random

import pytest

import repro
from repro import (
    FloodingStrategy,
    FullMembership,
    LocationService,
    NetworkConfig,
    ProbabilisticBiquorum,
    RandomMembership,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
    apply_churn,
    symmetric_quorum_size,
)
from repro.stack import AdhocStack, StackConfig


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_from_docstring(self):
        net = SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=7))
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(), epsilon=0.1)
        svc = LocationService(bq)
        svc.advertise(origin=0, key="printer", value=(12, 34))
        assert svc.lookup(origin=150, key="printer").found

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name


class TestEndToEndPipelines:
    def run_pipeline(self, advertise, lookup, net, keys=8, lookups=30,
                     seed=3, **bq_kw):
        bq = ProbabilisticBiquorum(net, advertise=advertise, lookup=lookup,
                                   epsilon=0.1, **bq_kw)
        svc = LocationService(bq)
        rng = random.Random(seed)
        for i in range(keys):
            svc.advertise(net.random_alive_node(rng), f"k{i}", i)
        hits = sum(
            svc.lookup(net.random_alive_node(rng),
                       f"k{rng.randrange(keys)}").found
            for _ in range(lookups))
        return hits / lookups

    def test_random_x_flooding(self):
        net = SimNetwork(NetworkConfig(n=120, avg_degree=10, seed=11))
        ratio = self.run_pipeline(
            RandomStrategy(FullMembership(net)),
            FloodingStrategy(expanding_ring=True), net)
        assert ratio >= 0.8

    def test_random_membership_variant(self):
        net = SimNetwork(NetworkConfig(n=120, avg_degree=10, seed=12))
        ratio = self.run_pipeline(
            RandomStrategy(RandomMembership(net)), UniquePathStrategy(), net)
        assert ratio >= 0.8

    @pytest.mark.slow
    def test_pipeline_under_mobility(self):
        net = SimNetwork(NetworkConfig(n=120, avg_degree=10, seed=13,
                                       mobility="waypoint", max_speed=2.0))
        ratio = self.run_pipeline(
            RandomStrategy(RandomMembership(net)),
            UniquePathStrategy(local_repair=True), net)
        assert ratio >= 0.75

    def test_pipeline_survives_heavy_churn(self):
        net = SimNetwork(NetworkConfig(n=150, avg_degree=15, seed=14))
        membership = RandomMembership(net)
        bq = ProbabilisticBiquorum(net, advertise=RandomStrategy(membership),
                                   lookup=UniquePathStrategy(), epsilon=0.05)
        svc = LocationService(bq)
        rng = random.Random(5)
        for i in range(6):
            svc.advertise(net.random_alive_node(rng), f"k{i}", i)
        apply_churn(net, fail_fraction=0.3, join_fraction=0.3, rng=rng,
                    keep_connected=True)
        membership.refresh()
        hits = sum(
            svc.lookup(net.random_alive_node(rng), f"k{i % 6}").found
            for i in range(30))
        # Section 6.1: a 30% churn should only mildly dent the intersection.
        assert hits / 30 >= 0.6

    def test_quorum_sizes_scale_with_sqrt_n(self):
        small = symmetric_quorum_size(100, 0.1)
        large = symmetric_quorum_size(400, 0.1)
        assert large == pytest.approx(2 * small, abs=2)


class TestCrossFidelity:
    """The packet-level stack and the graph-level simulator must agree on
    the phenomena the paper measures."""

    def test_flood_coverage_agrees(self):
        seed = 21
        n, ttl = 30, 2
        stack = AdhocStack(StackConfig(n=n, avg_degree=10, seed=seed))
        stack.run(0.5)
        stack.flood(0, "probe", ttl=ttl)
        stack.run(4.0)
        stack_cov = len({d for d, p, s in stack.received if p == "probe"})

        # Same deployment in the graph-level simulator.
        positions = [stack.env.position_of(i) for i in range(n)]
        net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed,
                                       require_connected=False),
                         positions=positions)
        graph_cov = net.flood(0, ttl=ttl).coverage

        # Identical topology: coverage within broadcast-loss tolerance.
        assert abs(stack_cov - graph_cov) <= max(3, 0.25 * graph_cov)

    def test_unicast_reachability_agrees(self):
        seed = 22
        n = 25
        stack = AdhocStack(StackConfig(n=n, avg_degree=10, seed=seed))
        stack.run(0.5)
        positions = [stack.env.position_of(i) for i in range(n)]
        net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed,
                                       require_connected=False),
                         positions=positions)
        dst = n - 1
        graph_route = net.route(0, dst)
        stack.send(0, dst, "x")
        stack.run(8.0)
        stack_delivered = ("x", 0) in stack.delivered_to(dst)
        assert stack_delivered == graph_route.success

    def test_route_hops_comparable(self):
        seed = 23
        n = 25
        stack = AdhocStack(StackConfig(n=n, avg_degree=10, seed=seed))
        stack.run(0.5)
        positions = [stack.env.position_of(i) for i in range(n)]
        net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed,
                                       require_connected=False),
                         positions=positions)
        result = net.route(0, n - 1)
        if result.success:
            # AODV paths are near-shortest; graph-level uses BFS: the
            # hop counts should be in the same ballpark.
            stack.send(0, n - 1, "y")
            stack.run(8.0)
            if ("y", 0) in stack.delivered_to(n - 1):
                assert result.hops <= n


class TestDeterminism:
    def test_same_seed_same_scenario_results(self):
        import repro.experiments as ex

        def run():
            net = ex.make_network(60, seed=9)
            membership = ex.make_membership(net, "random")
            return ex.run_scenario(
                net, advertise_strategy=RandomStrategy(membership),
                lookup_strategy=UniquePathStrategy(),
                advertise_size=15, lookup_size=9,
                n_keys=4, n_lookups=15, seed=10)

        a, b = run(), run()
        assert a.hits == b.hits
        assert a.lookup_messages_total == b.lookup_messages_total
        assert a.advertise_messages == b.advertise_messages
