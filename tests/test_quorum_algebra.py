"""Property and unit tests for the quorum algebra and optimizer.

The hypothesis layer drives randomly generated expressions through the
algebraic identities (dual involution, dual-pair intersection) and the
optimizer invariants (valid distributions, load within [lower bound, 1]);
the unit layer pins the known optima (majority-5 = 3/5, 3x3 grid = 1/3),
the solver agreement, and the degenerate-input NaN conventions.
"""

import math
import random

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.quorum import (  # noqa: E402
    And,
    Choose,
    Node,
    NotIntersecting,
    Or,
    QuorumSystem,
    build_system,
    chain_system,
    choose,
    enumerate_quorums,
    grid_system,
    majority_system,
    solve_strategy,
)


def _choose2of3(es):
    return Choose(2, es)


exprs = st.recursive(
    st.integers(0, 5).map(Node),
    lambda sub: st.one_of(
        st.lists(sub, min_size=2, max_size=3).map(And),
        st.lists(sub, min_size=2, max_size=3).map(Or),
        st.lists(sub, min_size=3, max_size=3).map(_choose2of3),
    ),
    max_leaves=8,
)


class TestAlgebraProperties:
    @given(e=exprs)
    @settings(max_examples=150, deadline=None)
    def test_dual_is_an_involution(self, e):
        assert e.dual().dual() == e

    @given(e=exprs)
    @settings(max_examples=100, deadline=None)
    def test_dual_preserves_elements(self, e):
        assert e.dual().elements() == e.elements()

    @given(e=exprs)
    @settings(max_examples=100, deadline=None)
    def test_expression_and_dual_always_intersect(self, e):
        reads = enumerate_quorums(e)
        writes = enumerate_quorums(e.dual())
        assert reads and writes
        for r in reads:
            for w in writes:
                assert r & w, f"{sorted(r)} misses {sorted(w)}"

    @given(e=exprs)
    @settings(max_examples=60, deadline=None)
    def test_default_system_construction_never_raises(self, e):
        qs = QuorumSystem(reads=e)
        assert qs.non_intersecting_pair() is None

    @given(e=exprs)
    @settings(max_examples=60, deadline=None)
    def test_enumerated_quorums_satisfy_is_quorum(self, e):
        for q in enumerate_quorums(e):
            assert e.is_quorum(q)


class TestOptimizerProperties:
    @given(e=exprs, fr=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_load_at_least_analytic_lower_bound(self, e, fr):
        sigma = solve_strategy(QuorumSystem(reads=e), read_fraction=fr)
        assert sigma.feasible
        assert sigma.load() >= sigma.load_lower_bound() - 1e-9
        assert sigma.load() <= 1.0 + 1e-9

    @given(e=exprs, fr=st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_probabilities_are_distributions(self, e, fr):
        sigma = solve_strategy(QuorumSystem(reads=e), read_fraction=fr)
        assert math.isclose(sum(sigma.read_probs), 1.0, abs_tol=1e-6)
        assert math.isclose(sum(sigma.write_probs), 1.0, abs_tol=1e-6)
        assert all(p >= 0 for p in sigma.read_probs + sigma.write_probs)

    @given(e=exprs)
    @settings(max_examples=40, deadline=None)
    def test_samples_are_quorums(self, e):
        qs = QuorumSystem(reads=e)
        sigma = solve_strategy(qs)
        rng = random.Random(7)
        for _ in range(5):
            assert qs.is_read_quorum(sigma.sample_read(rng))
            assert qs.is_write_quorum(sigma.sample_write(rng))


class TestKnownOptima:
    def test_majority_five_load(self):
        sigma = solve_strategy(majority_system(range(5)))
        assert sigma.load() == pytest.approx(0.6, abs=1e-6)
        assert sigma.load_lower_bound() == pytest.approx(0.6, abs=1e-6)
        for load in sigma.node_loads().values():
            assert load == pytest.approx(0.6, abs=1e-6)

    def test_grid_three_by_three_load(self):
        sigma = solve_strategy(grid_system(range(9)))
        assert sigma.load() == pytest.approx(1 / 3, abs=1e-6)

    def test_numpy_mw_close_to_exact(self):
        for qs in (majority_system(range(5)), grid_system(range(4))):
            exact = solve_strategy(qs, solver="scipy").load()
            approx = solve_strategy(qs, solver="numpy").load()
            assert approx == pytest.approx(exact, abs=0.02)

    def test_network_objective_minimizes_quorum_size(self):
        sigma = solve_strategy(chain_system(range(5)), optimize="network")
        assert sigma.expected_read_size() == pytest.approx(2.0)
        assert sigma.network_load() <= 2.5

    def test_latency_objective_prefers_fast_quorums(self):
        lat = {0: 9.0, 1: 9.0, 2: 9.0, 3: 0.1, 4: 0.1}
        sigma = solve_strategy(chain_system(range(5)), optimize="latency",
                               latencies=lat)
        assert sigma.read_quorums[
            max(range(len(sigma.read_probs)),
                key=lambda i: sigma.read_probs[i])] == frozenset({3, 4})


class TestConstructionAndEdges:
    def test_choose_collapses_at_extremes(self):
        assert isinstance(choose(1, [0, 1, 2]), Or)
        assert isinstance(choose(3, [0, 1, 2]), And)

    def test_choose_majority_is_self_dual(self):
        e = Choose(2, [Node(0), Node(1), Node(2)])
        assert e.dual() == e

    def test_superset_quorums_are_pruned(self):
        e = Or([Node(0), And([Node(0), Node(1)])])
        assert enumerate_quorums(e) == [frozenset({0})]

    def test_non_intersecting_pair_raises(self):
        with pytest.raises(NotIntersecting):
            QuorumSystem(reads=Or([Node(0), Node(1)]),
                         writes=Or([Node(0), Node(1)]))

    def test_resilience(self):
        assert majority_system(range(5)).resilience() == 2
        assert chain_system(range(5)).resilience() == 1
        assert QuorumSystem(reads=Node(0)).resilience() == 0

    def test_single_node_system_load_is_one(self):
        sigma = solve_strategy(QuorumSystem(reads=Node(0)))
        assert sigma.load() == pytest.approx(1.0)

    def test_all_faulted_is_nan_not_crash(self):
        sigma = solve_strategy(majority_system(range(3)),
                               faulty={0, 1, 2})
        assert not sigma.feasible
        assert math.isnan(sigma.load())
        assert math.isnan(sigma.network_load())
        assert math.isnan(sigma.load_lower_bound())
        assert sigma.sample_read(random.Random(0)) is None
        assert all(math.isnan(v) for v in sigma.node_loads().values())

    def test_partial_faults_reroute_mass(self):
        sigma = solve_strategy(majority_system(range(5)), faulty={0})
        assert sigma.feasible
        assert all(0 not in q for q in sigma.read_quorums)
        assert sigma.load() >= 0.6 - 1e-9  # fewer quorums, never better

    def test_read_fraction_validation(self):
        qs = majority_system(range(3))
        with pytest.raises(ValueError, match="read_fraction"):
            solve_strategy(qs, read_fraction=1.5)
        with pytest.raises(ValueError, match="read_fraction"):
            solve_strategy(qs).load(read_fraction=-0.1)

    def test_unknown_objective_and_solver_rejected(self):
        qs = majority_system(range(3))
        with pytest.raises(ValueError, match="objective"):
            solve_strategy(qs, optimize="bogus")
        with pytest.raises(ValueError, match="solver"):
            solve_strategy(qs, solver="bogus")

    def test_build_system_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="unknown quorum system"):
            build_system("bogus", range(4))

    def test_grid_reshape_must_divide(self):
        with pytest.raises(ValueError, match="reshape"):
            grid_system(range(5), rows=2)

    def test_enumeration_cap(self):
        with pytest.raises(ValueError, match="more than"):
            enumerate_quorums(Or([Node(i) for i in range(4)]), limit=3)
