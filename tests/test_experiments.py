"""Tests for the experiment drivers (small-scale shape checks)."""

import math

import pytest

import repro.experiments as ex


class TestScenarioHarness:
    def make_stats(self, **kw):
        from repro.core import RandomStrategy, UniquePathStrategy
        net = ex.make_network(80, seed=1)
        membership = ex.make_membership(net, "random")
        defaults = dict(
            net=net,
            advertise_strategy=RandomStrategy(membership),
            lookup_strategy=UniquePathStrategy(),
            advertise_size=18, lookup_size=11,
            n_keys=5, n_lookups=20, seed=2,
        )
        defaults.update(kw)
        return ex.run_scenario(**defaults)

    def test_counts_add_up(self):
        stats = self.make_stats()
        assert stats.advertises == 5
        assert stats.lookups == 20
        assert stats.hits <= stats.intersections <= stats.lookups

    def test_hit_ratio_in_unit_interval(self):
        stats = self.make_stats()
        assert 0.0 <= stats.hit_ratio <= 1.0

    def test_miss_fraction_excluded_from_hit_ratio(self):
        stats = self.make_stats(miss_fraction=0.5, n_lookups=20)
        assert stats.lookups_absent == 10
        assert stats.lookups_present == 10
        # A full-size advertise quorum should still intersect most lookups.
        assert stats.hit_ratio >= 0.5

    def test_absent_lookups_record_miss_cost(self):
        stats = self.make_stats(miss_fraction=0.5, n_lookups=20)
        assert len(stats.lookup_messages_miss) >= 10

    def test_message_averages_consistent(self):
        stats = self.make_stats()
        assert stats.avg_advertise_messages > 0
        assert stats.avg_lookup_messages >= 0

    def test_membership_kinds(self):
        net = ex.make_network(40, seed=0)
        assert ex.make_membership(net, "full").view()
        assert ex.make_membership(net, "random").view(0)
        with pytest.raises(ValueError):
            ex.make_membership(net, "psychic")

    def test_format_table(self):
        out = ex.format_table(["a", "b"], [(1, 2.5), (3, 4.0)])
        assert "a" in out and "2.5" in out
        assert len(out.splitlines()) == 4


class TestFigureDrivers:
    def test_fig4_pct_shape(self):
        points = ex.pct_by_network_size(sizes=(50,), walks=3,
                                        coverage_fractions=(1.0,))
        assert len(points) == 2  # simple + unique
        simple = next(p for p in points if not p.unique)
        uniq = next(p for p in points if p.unique)
        # Self-avoiding walks never cost more than simple ones.
        assert uniq.steps_per_unique <= simple.steps_per_unique + 0.2

    def test_fig4_density_effect(self):
        points = ex.pct_by_density(densities=(7, 20), n=100, walks=4)
        sparse = next(p for p in points if p.avg_degree == 7 and not p.unique)
        dense = next(p for p in points if p.avg_degree == 20 and not p.unique)
        assert sparse.steps_per_unique >= dense.steps_per_unique - 0.3

    def test_fig5_coverage_monotone(self):
        points = ex.flooding_coverage(n=80, ttls=(1, 2, 3), floods_per_ttl=3)
        covs = [p.coverage for p in points]
        assert covs == sorted(covs)

    def test_fig5_granularity_above_one(self):
        points = ex.flooding_coverage(n=150, ttls=(1, 2, 3), floods_per_ttl=3)
        assert points[1].granularity > 1.0

    def test_fig7_analytic_matches_simulation(self):
        points = ex.degradation_curves(fractions=(0.0, 0.4), trials=200,
                                       n=300, modes=("both",))
        for p in points:
            # Simulation should not fall far below the analytic bound.
            assert p.simulated_intersection >= p.analytic_intersection - 0.07

    def test_fig7_failures_constant_flat(self):
        points = ex.degradation_curves(fractions=(0.0, 0.5), trials=150,
                                       n=300, modes=("failures-constant",))
        assert all(p.analytic_intersection == pytest.approx(0.95)
                   for p in points)

    def test_fig8_advertise_cost_grows_with_quorum(self):
        points = ex.random_advertise_cost(sizes=(80,),
                                          quorum_factors=(0.5, 1.5),
                                          n_keys=4)
        assert points[1].avg_messages > points[0].avg_messages

    def test_fig8_lookup_hit_grows_with_quorum(self):
        points = ex.random_lookup_hit_ratio(sizes=(80,),
                                            lookup_factors=(0.25, 1.5),
                                            n_keys=5, n_lookups=25)
        assert points[1].hit_ratio >= points[0].hit_ratio

    def test_fig9_random_opt_hit_grows_with_initiations(self):
        points = ex.random_opt_lookup(n=80, initiations=(1, 6),
                                      n_keys=5, n_lookups=25)
        assert points[1].hit_ratio >= points[0].hit_ratio
        assert points[1].avg_quorum_size > points[1].initiations

    def test_fig10_unique_path_09_at_115_sqrt_n(self):
        points = ex.unique_path_lookup(
            n=100, lookup_factors=(1.15,), mobility="static",
            n_keys=8, n_lookups=40, miss_fraction=0.0)
        assert points[0].hit_ratio >= 0.75

    def test_fig10_messages_below_quorum_size(self):
        points = ex.unique_path_lookup(
            n=100, lookup_factors=(1.15,), mobility="static",
            n_keys=8, n_lookups=40, miss_fraction=0.0)
        # The paper's surprise: fewer messages than |Ql| incl. the reply.
        assert points[0].avg_messages_on_hit <= points[0].lookup_size

    def test_fig11_flooding_hit_grows_with_ttl(self):
        points = ex.flooding_lookup(n=100, ttls=(1, 3), n_keys=5,
                                    n_lookups=20)
        assert points[1].hit_ratio >= points[0].hit_ratio

    def test_fig12_path_path_needs_linear_sizes(self):
        points = ex.path_x_path(n=100, size_fractions=(0.05, 0.3),
                                n_keys=5, n_lookups=20)
        assert points[1].hit_ratio > points[0].hit_ratio

    @pytest.mark.slow
    def test_fig13_mobility_drops_replies_not_intersections(self):
        points = ex.mobility_sweep(n=100, speeds=(2.0, 20.0),
                                   local_repair=False,
                                   n_keys=6, n_lookups=30)
        slow, fast = points
        assert fast.reply_drop_ratio >= slow.reply_drop_ratio
        assert fast.intersection_ratio >= 0.6  # salvation keeps walks alive

    @pytest.mark.slow
    def test_fig14_repair_recovers_hit_ratio(self):
        base = ex.mobility_sweep(n=100, speeds=(20.0,), local_repair=False,
                                 n_keys=6, n_lookups=30)[0]
        fixed = ex.mobility_sweep(n=100, speeds=(20.0,), local_repair=True,
                                  n_keys=6, n_lookups=30)[0]
        assert fixed.hit_ratio >= base.hit_ratio

    def test_fig14f_churn_degrades_slowly(self):
        points = ex.churn_sweep(n=100, fractions=(0.0, 0.4),
                                n_keys=6, n_lookups=30)
        assert points[0].hit_ratio >= 0.85
        assert points[1].hit_ratio >= 0.5

    def test_fig15_curves_have_all_strategies(self):
        curves = ex.lookup_tradeoff_curves(n=80, n_keys=4, n_lookups=15)
        assert set(curves) == {"UNIQUE-PATH", "RANDOM-OPT", "FLOODING"}
        assert all(curves.values())

    def test_fig16_summary_rows(self):
        rows = ex.summary_table(n=80, n_keys=4, n_lookups=15,
                                mobilities=("static",))
        assert len(rows) == 5
        rendered = ex.render_summary(rows)
        assert "UNIQUE-PATH" in rendered

    def test_ablation_early_halting_reduces_hit_cost(self):
        rows = ex.ablation_early_halting(n=80, n_keys=6, n_lookups=25)
        with_halt = next(r for r in rows if r.early_halting and r.reply_reduction)
        without = next(r for r in rows
                       if not r.early_halting and r.reply_reduction)
        assert with_halt.avg_messages_on_hit <= without.avg_messages_on_hit
