"""Tests for empirical walk measurements: crossing time, spectral mixing,
exact partial cover time."""

import math
import random

import numpy as np
import pytest

from repro.analysis import (
    crossing_time_lower_bound,
    empirical_stationary_distribution,
    exact_partial_cover_time,
    md_walk_transition_matrix,
    measure_crossing_time,
    pct_complete_graph,
    spectral_mixing_time,
)
from repro.geometry import rgg_for_density
from repro.simnet import NetworkConfig, SimNetwork


def complete_graph(n):
    return [[v for v in range(n) if v != u] for u in range(n)]


class TestExactPct:
    def test_complete_graph_matches_coupon_collector(self):
        n = 6
        exact = exact_partial_cover_time(complete_graph(n), 0, n)
        assert exact == pytest.approx(pct_complete_graph(n, n), rel=1e-9)

    def test_partial_target_cheaper_than_full(self):
        adj = complete_graph(6)
        assert exact_partial_cover_time(adj, 0, 3) < \
            exact_partial_cover_time(adj, 0, 6)

    def test_path_graph_known_value(self):
        # 0-1-2 line: full cover from 0 takes expected 4 steps.
        adj = [[1], [0, 2], [1]]
        assert exact_partial_cover_time(adj, 0, 3) == pytest.approx(4.0)

    def test_target_one_is_free(self):
        assert exact_partial_cover_time(complete_graph(4), 0, 1) == 0.0

    def test_cycle_symmetric(self):
        cycle = [[(u - 1) % 6, (u + 1) % 6] for u in range(6)]
        a = exact_partial_cover_time(cycle, 0, 4)
        b = exact_partial_cover_time(cycle, 3, 4)
        assert a == pytest.approx(b)

    def test_monte_carlo_agrees_with_exact(self):
        adj = [[1, 2], [0, 2], [0, 1, 3], [2]]  # triangle with a tail
        exact = exact_partial_cover_time(adj, 0, 4)
        rng = random.Random(0)
        total = 0
        trials = 4000
        for _ in range(trials):
            current, visited, steps = 0, {0}, 0
            while len(visited) < 4:
                current = rng.choice(adj[current])
                visited.add(current)
                steps += 1
            total += steps
        assert total / trials == pytest.approx(exact, rel=0.07)

    def test_too_big_rejected(self):
        with pytest.raises(ValueError):
            exact_partial_cover_time(complete_graph(13), 0, 13)

    def test_isolated_node_rejected(self):
        with pytest.raises(ValueError):
            exact_partial_cover_time([[1], [0], []], 0, 2)


class TestCrossingTime:
    def test_scales_with_network_size(self):
        """Theorem 5.5: Omega(r^-2); at fixed density r^-2 ~ n."""
        means = {}
        for n in (50, 200):
            net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=2))
            m = measure_crossing_time(net, pairs=12, rng=random.Random(1))
            means[n] = m.mean_steps
        assert means[200] > 1.5 * means[50]

    def test_respects_lower_bound_order(self):
        n = 100
        net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=3))
        m = measure_crossing_time(net, pairs=12, rng=random.Random(1))
        # Normalised r^2 ~ pi r^2 / a^2 = d_avg / n -> bound ~ n / d_avg.
        bound = n / 10 / 4  # generous constant slack on the Omega bound
        assert m.mean_steps >= bound

    def test_no_timeouts_on_connected_graph(self):
        net = SimNetwork(NetworkConfig(n=80, avg_degree=10, seed=4))
        m = measure_crossing_time(net, pairs=10, rng=random.Random(2))
        assert m.timeouts == 0
        assert m.median_steps <= m.mean_steps * 3


class TestSpectralMixing:
    def make_graph(self, n, seed=5):
        return rgg_for_density(n, avg_degree=12, rng=random.Random(seed),
                               require_connected=True)

    def test_transition_matrix_is_stochastic(self):
        g = self.make_graph(40)
        P = md_walk_transition_matrix(g)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert (P >= 0).all()

    def test_uniform_is_stationary(self):
        g = self.make_graph(40)
        P = md_walk_transition_matrix(g)
        pi = np.full(g.n, 1.0 / g.n)
        assert np.allclose(pi @ P, pi)

    def test_mixing_time_scales_linearly(self):
        """RaWMS: MD-walk mixing ~ n/2 on RGGs — i.e. linear in n."""
        t_small = spectral_mixing_time(self.make_graph(30, seed=6))
        t_large = spectral_mixing_time(self.make_graph(120, seed=6))
        assert t_large > 1.5 * t_small

    def test_disconnected_graph_never_mixes(self):
        from repro.geometry import random_geometric_graph
        g = random_geometric_graph(20, radius=0.01, rng=random.Random(0))
        assert math.isinf(spectral_mixing_time(g))

    def test_empirical_distribution_flattens(self):
        g = self.make_graph(30, seed=7)
        short = empirical_stationary_distribution(g, steps=2, starts=600,
                                                  rng=random.Random(1))
        mixed = empirical_stationary_distribution(g, steps=200, starts=600,
                                                  rng=random.Random(1))
        uniform = np.full(g.n, 1.0 / g.n)
        tv_short = 0.5 * np.abs(short - uniform).sum()
        tv_mixed = 0.5 * np.abs(mixed - uniform).sum()
        assert tv_mixed <= tv_short + 0.05
