"""Churn-resilience layer: access policies, churn commit semantics,
fault campaigns, adaptive refresh, and the maintenance experiment."""

import random

import pytest

from repro.core import (
    AccessPolicy,
    ProbabilisticBiquorum,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.core.strategies import AccessResult, AccessStrategy
from repro.experiments import maintenance_curves
from repro.faults import (
    BUILTIN_CAMPAIGNS,
    ByzantineBehavior,
    CampaignRunner,
    DropBurst,
    FailureWave,
    FaultCampaign,
    JoinWave,
    Partition,
    StalenessWindow,
    load_campaign,
    run_fault_campaign,
)
from repro.membership import FullMembership
from repro.obs.query import summarize_trace
from repro.obs.trace import record_event
from repro.services import LocationService
from repro.simnet import ChurnProcess, NetworkConfig, SimNetwork, apply_churn


def make_net(n=60, seed=3, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


def churn_events(net, action=None):
    events = [e for e in net.trace.events() if e.kind == "churn"]
    if action is not None:
        events = [e for e in events if e.fields.get("action") == action]
    return events


# ---------------------------------------------------------------------------
# AccessPolicy
# ---------------------------------------------------------------------------


class TestAccessPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AccessPolicy(deadline=0.0)
        with pytest.raises(ValueError):
            AccessPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            AccessPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            AccessPolicy(jitter=-0.1)

    def test_active(self):
        assert not AccessPolicy().active
        assert AccessPolicy(max_retries=1).active
        assert AccessPolicy(deadline=2.0).active

    def test_backoff_grows_exponentially_and_caps(self):
        policy = AccessPolicy(max_retries=8, backoff_base=0.1,
                              backoff_factor=2.0, backoff_max=0.5,
                              jitter=0.0)
        rng = random.Random(0)
        waits = [policy.backoff_before(i, rng) for i in (1, 2, 3, 4, 5)]
        assert waits[:3] == pytest.approx([0.1, 0.2, 0.4])
        assert waits[3] == waits[4] == pytest.approx(0.5)

    def test_jitter_is_bounded_and_seeded(self):
        policy = AccessPolicy(max_retries=1, backoff_base=1.0, jitter=0.2)
        rng = random.Random(42)
        wait = policy.backoff_before(1, rng)
        assert 1.0 <= wait <= 1.2
        assert wait == policy.backoff_before(1, random.Random(42))


class FlakyStrategy(AccessStrategy):
    """Fails the first ``fail_times`` attempts, then succeeds."""

    name = "FLAKY"

    def __init__(self, fail_times=0, latency=0.0):
        self.fail_times = fail_times
        self.latency = latency
        self.calls = 0

    def _attempt(self, net, kind, origin):
        self.calls += 1
        if self.latency:
            net.advance(self.latency)
        ok = self.calls > self.fail_times
        return AccessResult(strategy=self.name, kind=kind, success=ok,
                            quorum=[origin] if ok else [])

    def _advertise(self, net, origin, store_fn, target_size):
        return self._attempt(net, "advertise", origin)

    def _lookup(self, net, origin, probe_fn, target_size):
        return self._attempt(net, "lookup", origin)


class TestRetryLoop:
    def test_no_policy_means_single_attempt(self):
        net = make_net()
        strategy = FlakyStrategy(fail_times=1)
        result = strategy.advertise(net, 0, lambda n: None, 4)
        assert not result.success
        assert result.attempts == 1
        assert strategy.calls == 1
        assert net.metrics.counter_value("access.retries") == 0

    def test_retries_until_success(self):
        net = make_net()
        net.trace.enable(memory=True)
        strategy = FlakyStrategy(fail_times=2).set_policy(
            AccessPolicy(max_retries=3, backoff_base=0.5, jitter=0.0))
        started = net.now
        result = strategy.advertise(net, 0, lambda n: None, 4)
        assert result.success
        assert result.attempts == 3
        assert strategy.calls == 3
        # Backoffs (0.5 + 1.0) ran on the simulated clock and the final
        # latency covers the whole envelope.
        assert net.now - started == pytest.approx(1.5)
        assert result.latency == pytest.approx(net.now - started)
        assert net.metrics.counter_value("access.retries") == 2
        retries = [e for e in net.trace.events() if e.kind == "access-retry"]
        assert [e.fields["attempt"] for e in retries] == [1, 2]

    def test_retry_budget_exhausted(self):
        net = make_net()
        strategy = FlakyStrategy(fail_times=99).set_policy(
            AccessPolicy(max_retries=2, backoff_base=0.1, jitter=0.0))
        result = strategy.lookup(net, 0, lambda n: None, 4)
        assert not result.success
        assert result.attempts == 3
        assert not result.deadline_missed  # no deadline configured

    def test_deadline_blocks_retries_that_cannot_fit(self):
        net = make_net()
        net.trace.enable(memory=True)
        strategy = FlakyStrategy(fail_times=99).set_policy(
            AccessPolicy(deadline=1.0, max_retries=5, backoff_base=2.0,
                         jitter=0.0))
        result = strategy.lookup(net, 0, lambda n: None, 4)
        assert result.attempts == 1  # the 2 s backoff never fit in 1 s
        assert result.deadline_missed
        assert net.metrics.counter_value("access.deadline_misses") == 1
        assert [e.kind for e in net.trace.events()
                if e.kind == "access-deadline-miss"] == ["access-deadline-miss"]

    def test_slow_success_past_deadline_is_a_miss(self):
        net = make_net()
        strategy = FlakyStrategy(fail_times=0, latency=3.0).set_policy(
            AccessPolicy(deadline=1.0, max_retries=0))
        result = strategy.advertise(net, 0, lambda n: None, 4)
        assert result.success
        assert result.deadline_missed
        assert result.latency == pytest.approx(3.0)

    def test_fast_success_within_deadline_is_not_a_miss(self):
        net = make_net()
        strategy = FlakyStrategy(fail_times=0).set_policy(
            AccessPolicy(deadline=10.0, max_retries=2))
        result = strategy.advertise(net, 0, lambda n: None, 4)
        assert result.success
        assert not result.deadline_missed
        assert net.metrics.counter_value("access.deadline_misses") == 0

    def test_cumulative_messages_across_attempts(self):
        class Costly(FlakyStrategy):
            def _attempt(self, net, kind, origin):
                result = super()._attempt(net, kind, origin)
                # Trace what we claim so the accounting audit stays green.
                record_event(net, "virtual-msg", reason="test", count=5)
                record_event(net, "routing", reason="test", count=2)
                result.messages = 5
                result.routing_messages = 2
                return result

        net = make_net()
        strategy = Costly(fail_times=1).set_policy(
            AccessPolicy(max_retries=1, backoff_base=0.1, jitter=0.0))
        result = strategy.advertise(net, 0, lambda n: None, 4)
        assert result.success and result.attempts == 2
        assert result.messages == 10
        assert result.routing_messages == 4

    def test_real_strategy_under_policy_passes_strict_audit(self):
        net = make_net(seed=5)
        membership = FullMembership(net)
        strategy = RandomStrategy(membership).set_policy(
            AccessPolicy(deadline=30.0, max_retries=2))
        bq = ProbabilisticBiquorum(net, advertise=strategy,
                                   lookup=UniquePathStrategy(),
                                   epsilon=0.05)
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        receipt = svc.lookup(7, "k")
        assert receipt.found


# ---------------------------------------------------------------------------
# Churn commit/rollback semantics (satellites 2 and 3)
# ---------------------------------------------------------------------------


class TestChurnCommit:
    def test_tentative_failure_rollback_is_silent(self):
        net = make_net()
        net.trace.enable(memory=True)
        evicted = []
        net.add_failure_listener(evicted.append)
        net.fail_node(5, commit=False)
        assert not net.is_alive(5)
        net.revive_node(5)
        assert net.is_alive(5)
        assert churn_events(net) == []
        assert evicted == []
        assert net.metrics.counter_value("churn.failures") == 0
        assert net.metrics.counter_value("churn.revives") == 0

    def test_commit_fires_event_metrics_and_listeners(self):
        net = make_net()
        net.trace.enable(memory=True)
        evicted = []
        net.add_failure_listener(evicted.append)
        net.fail_node(5, commit=False)
        net.commit_failure(5)
        assert [e.fields["node"] for e in churn_events(net, "fail")] == [5]
        assert net.metrics.counter_value("churn.failures") == 1
        assert evicted == [5]

    def test_revive_after_commit_emits_compensating_event(self):
        net = make_net()
        net.trace.enable(memory=True)
        net.fail_node(5)  # commit=True default
        net.revive_node(5)
        assert len(churn_events(net, "fail")) == 1
        assert len(churn_events(net, "revive")) == 1
        assert net.metrics.counter_value("churn.revives") == 1

    def test_join_counts(self):
        net = make_net()
        net.trace.enable(memory=True)
        net.join_node()
        assert len(churn_events(net, "join")) == 1
        assert net.metrics.counter_value("churn.joins") == 1

    def test_bystander_cache_survives_rollback_but_not_commit(self):
        net = make_net()
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(net, advertise=RandomStrategy(membership),
                                   lookup=UniquePathStrategy(), epsilon=0.05)
        svc = LocationService(bq, enable_caching=True)
        svc.cache_at(9, "k", "v", version=1)
        net.fail_node(9, commit=False)
        net.revive_node(9)
        assert svc.cache_lookup(9, "k") is not None
        net.fail_node(9)
        assert svc.cache_lookup(9, "k") is None

    def test_apply_churn_trace_matches_outcome(self):
        net = make_net(seed=11)
        net.trace.enable(memory=True)
        outcome = apply_churn(net, fail_fraction=0.3,
                              rng=random.Random(2), keep_connected=True)
        fails = churn_events(net, "fail")
        assert sorted(e.fields["node"] for e in fails) == sorted(outcome.failed)
        # Rollbacks left no trace at all.
        assert churn_events(net, "revive") == []
        assert (net.metrics.counter_value("churn.failures")
                == len(outcome.failed))


class TestChurnProcessStop:
    def test_stop_cancels_pending_events(self):
        net = make_net()
        baseline = net.sim.pending_count
        proc = ChurnProcess(net, failure_rate=0.5, join_rate=0.5,
                            rng=random.Random(1))
        assert net.sim.pending_count == baseline + 2
        proc.stop()
        assert net.sim.pending_count == baseline

    def test_stop_after_running_still_cancels(self):
        net = make_net(seed=4)
        proc = ChurnProcess(net, failure_rate=1.0, join_rate=1.0,
                            rng=random.Random(1))
        net.advance(5.0)
        assert proc.failures + proc.joins > 0
        baseline_alive = net.n_alive
        proc.stop()
        net.advance(20.0)
        assert net.n_alive == baseline_alive  # no churn after stop

    def test_process_uses_commit_protocol(self):
        net = make_net(seed=4)
        net.trace.enable(memory=True)
        proc = ChurnProcess(net, failure_rate=1.0, rng=random.Random(1),
                            keep_connected=True)
        net.advance(10.0)
        proc.stop()
        assert len(churn_events(net, "fail")) == proc.failures


# ---------------------------------------------------------------------------
# Campaign schema + runner
# ---------------------------------------------------------------------------


class TestCampaignSchema:
    def test_roundtrip(self):
        campaign = BUILTIN_CAMPAIGNS["stress"]
        assert FaultCampaign.from_dict(campaign.to_dict()) == campaign

    def test_unknown_injection_type_rejected(self):
        with pytest.raises(ValueError, match="unknown injection"):
            FaultCampaign.from_dict(
                {"name": "x", "injections": [{"type": "meteor", "at": 1.0}]})

    def test_load_unknown_campaign_rejected(self):
        with pytest.raises(ValueError, match="unknown campaign"):
            load_campaign("no-such-campaign")

    def test_load_from_json_file(self, tmp_path):
        import json
        path = tmp_path / "c.json"
        path.write_text(json.dumps(BUILTIN_CAMPAIGNS["waves"].to_dict()))
        assert load_campaign(str(path)) == BUILTIN_CAMPAIGNS["waves"]

    def test_duration(self):
        campaign = FaultCampaign("d", (
            DropBurst(at=1.0, duration=4.0, drop_prob=0.5),
            FailureWave(at=3.0, fraction=0.1)))
        assert campaign.duration == 5.0


class TestCampaignRunner:
    def test_drop_burst_applies_and_restores(self):
        net = make_net()
        campaign = FaultCampaign("b", (
            DropBurst(at=2.0, duration=3.0, drop_prob=0.4),))
        CampaignRunner(net, campaign).start()
        assert net.config.drop_prob == 0.0
        net.run_until(2.5)
        assert net.config.drop_prob == 0.4
        net.run_until(6.0)
        assert net.config.drop_prob == 0.0

    def test_failure_and_join_waves_change_population(self):
        net = make_net(seed=8)
        n0 = net.n_alive
        campaign = FaultCampaign("w", (
            FailureWave(at=1.0, fraction=0.1, keep_connected=False),
            JoinWave(at=2.0, fraction=0.2)))
        runner = CampaignRunner(net, campaign).start()
        net.run_until(1.5)
        assert net.n_alive == n0 - round(0.1 * n0)
        net.run_until(2.5)
        assert net.n_alive > n0 - round(0.1 * n0)
        assert runner.injections_applied == 2

    def test_partition_fails_band_then_heals(self):
        net = make_net(seed=9)
        n0 = net.n_alive
        campaign = FaultCampaign("p", (
            Partition(at=1.0, duration=5.0, axis="x", position=0.5),))
        CampaignRunner(net, campaign).start()
        net.run_until(2.0)
        assert net.n_alive < n0
        net.run_until(7.0)
        assert net.n_alive == n0

    def test_staleness_window_freezes_membership_and_heartbeat(self):
        net = make_net(seed=10)
        membership = FullMembership(net)
        campaign = FaultCampaign("s", (
            StalenessWindow(at=1.0, duration=5.0),))
        CampaignRunner(net, campaign, memberships=(membership,)).start()
        net.run_until(2.0)
        view_during = set(membership.view())
        victim = net.alive_nodes()[0]
        net.fail_node(victim)
        membership.refresh()  # frozen: must be a no-op
        assert set(membership.view()) == view_during
        net.run_until(7.0)  # window over: thaw refreshes
        assert victim not in set(membership.view())

    def test_fault_events_traced(self):
        net = make_net()
        net.trace.enable(memory=True)
        campaign = FaultCampaign("t", (
            DropBurst(at=1.0, duration=2.0, drop_prob=0.2),
            FailureWave(at=2.0, fraction=0.05)))
        CampaignRunner(net, campaign).start()
        net.run_until(5.0)
        faults = [e for e in net.trace.events() if e.kind == "fault"]
        phases = [(e.fields["inject"], e.fields["phase"]) for e in faults]
        assert phases == [("drop-burst", "begin"), ("failure-wave", "begin"),
                          ("drop-burst", "end")]

    def test_stop_cancels_and_unwinds(self):
        net = make_net()
        campaign = FaultCampaign("u", (
            DropBurst(at=1.0, duration=50.0, drop_prob=0.4),
            FailureWave(at=40.0, fraction=0.5, keep_connected=False)))
        runner = CampaignRunner(net, campaign).start()
        net.run_until(2.0)
        assert net.config.drop_prob == 0.4
        n_now = net.n_alive
        runner.stop()
        assert net.config.drop_prob == 0.0  # active burst unwound
        net.run_until(60.0)
        assert net.n_alive == n_now  # pending wave cancelled


class TestOverlappingInjections:
    """Regression: overlapping windows must unwind in reverse-begin
    order, each restoring its predecessor's state — not the baseline."""

    def test_nested_drop_bursts_restore_outer_then_baseline(self):
        net = make_net()
        campaign = FaultCampaign("nest", (
            DropBurst(at=1.0, duration=10.0, drop_prob=0.4),
            DropBurst(at=2.0, duration=3.0, drop_prob=0.7)))
        CampaignRunner(net, campaign).start()
        net.run_until(2.5)
        assert net.config.drop_prob == 0.7
        net.run_until(6.0)   # inner ended: outer burst still active
        assert net.config.drop_prob == 0.4
        net.run_until(12.0)  # outer ended: baseline restored
        assert net.config.drop_prob == 0.0

    def test_identical_overlapping_bursts_unwind_independently(self):
        # Two value-equal (frozen dataclass) bursts active at once: the
        # runner must track them as distinct activations, not collapse
        # them by equality.
        net = make_net()
        campaign = FaultCampaign("twins", (
            DropBurst(at=1.0, duration=10.0, drop_prob=0.5),
            DropBurst(at=2.0, duration=3.0, drop_prob=0.5)))
        CampaignRunner(net, campaign).start()
        net.run_until(6.0)   # inner twin ended
        assert net.config.drop_prob == 0.5  # outer twin still holds
        net.run_until(12.0)
        assert net.config.drop_prob == 0.0

    def test_nested_staleness_windows_stay_frozen_until_last_end(self):
        net = make_net(seed=10)
        membership = FullMembership(net)
        campaign = FaultCampaign("sn", (
            StalenessWindow(at=1.0, duration=10.0),
            StalenessWindow(at=2.0, duration=3.0)))
        CampaignRunner(net, campaign, memberships=(membership,)).start()
        net.run_until(6.0)   # inner window over, outer still open
        view_during = set(membership.view())
        victim = net.alive_nodes()[0]
        net.fail_node(victim)
        membership.refresh()  # must still be frozen
        assert set(membership.view()) == view_during
        net.run_until(12.0)  # outer over: thaw refreshes
        assert victim not in set(membership.view())

    def test_stop_unwinds_in_reverse_begin_order(self):
        net = make_net()
        campaign = FaultCampaign("lifo", (
            DropBurst(at=1.0, duration=50.0, drop_prob=0.4),
            DropBurst(at=2.0, duration=50.0, drop_prob=0.7)))
        runner = CampaignRunner(net, campaign).start()
        net.run_until(3.0)
        assert net.config.drop_prob == 0.7
        runner.stop()  # pops inner (restores 0.4) then outer (0.0)
        assert net.config.drop_prob == 0.0

    def test_byzantine_window_attaches_and_detaches(self):
        net = make_net(seed=11)
        campaign = FaultCampaign("byz", (
            ByzantineBehavior(at=1.0, duration=5.0, behavior="lie",
                              fraction=0.2),))
        runner = CampaignRunner(net, campaign).start()
        net.run_until(2.0)
        assert net.byzantine is not None and net.byzantine.active
        assert set(net.byzantine.modes.values()) == {"lie"}
        net.run_until(7.0)   # window over: honest again
        assert not net.byzantine.active
        assert runner.injections_applied == 1

    def test_stop_detaches_active_byzantine_nodes(self):
        net = make_net(seed=12)
        campaign = FaultCampaign("byzstop", (
            ByzantineBehavior(at=1.0, duration=50.0, behavior="drop",
                              fraction=0.2),))
        runner = CampaignRunner(net, campaign).start()
        net.run_until(2.0)
        assert net.byzantine.active
        runner.stop()
        assert not net.byzantine.active


# ---------------------------------------------------------------------------
# End-to-end campaign scenario: determinism + metrics parity
# ---------------------------------------------------------------------------


class TestRunFaultCampaign:
    def test_same_seed_runs_are_identical(self):
        a = run_fault_campaign(campaign="smoke", n=60, seed=7,
                               n_keys=5, n_lookups=15)
        b = run_fault_campaign(campaign="smoke", n=60, seed=7,
                               n_keys=5, n_lookups=15)
        assert a == b

    def test_different_seeds_differ(self):
        a = run_fault_campaign(campaign="smoke", n=60, seed=7,
                               n_keys=5, n_lookups=15)
        b = run_fault_campaign(campaign="smoke", n=60, seed=8,
                               n_keys=5, n_lookups=15)
        assert a != b

    def test_trace_summary_matches_live_metrics(self, tmp_path, monkeypatch):
        path = tmp_path / "campaign.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        report = run_fault_campaign(campaign="smoke", n=60, seed=7,
                                    n_keys=5, n_lookups=15)
        offline = summarize_trace(str(path)).snapshot()
        assert offline.get("access.retries", 0) == report.retries
        assert offline.get("access.deadline_misses", 0) == report.deadline_misses
        assert offline.get("churn.failures", 0) == report.failures
        assert offline.get("churn.joins", 0) == report.joins
        assert offline.get("churn.revives", 0) == report.revives
        # The policy actually kicked in under the smoke campaign.
        assert report.retries > 0

    def test_refresh_off_mode(self):
        report = run_fault_campaign(campaign="waves", n=60, seed=7,
                                    n_keys=5, n_lookups=10, refresh="off")
        assert report.refresh_rounds == 0
        assert report.refresh_interval is None

    def test_bad_refresh_mode_rejected(self):
        with pytest.raises(ValueError):
            run_fault_campaign(refresh="sometimes")


# ---------------------------------------------------------------------------
# Maintenance experiment (the acceptance-criteria figure)
# ---------------------------------------------------------------------------


class TestMaintenanceCurves:
    def test_degradation_monotone_and_refresh_flattens(self):
        points = maintenance_curves(n=80, seed=7, n_keys=6, samples=8)
        off = [p for p in points if p.refresh == "off"]
        on = [p for p in points if p.refresh == "on"]
        assert len(off) == len(on) == 9
        # Without refresh the intersection probability only degrades.
        for a, b in zip(off, off[1:]):
            assert b.intersection <= a.intersection + 1e-12
        # The campaign really did degrade it...
        assert off[-1].intersection < off[0].intersection - 0.05
        # ...and the refresh daemon visibly flattens the curve.
        assert on[-1].refresh_rounds > 0
        assert on[-1].intersection > off[-1].intersection + 0.02
