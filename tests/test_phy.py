"""Tests for PHY parameters, path loss calibration, and channel models."""

import math

import pytest

from repro.phy import (
    DEFAULT_PHY,
    FreeSpace,
    InversePowerLaw,
    PhyParams,
    ProtocolChannel,
    SINRChannel,
    TwoRayGround,
    dbm_to_mw,
    default_pathloss,
    mw_to_dbm,
)
from repro.sim import Simulator


class TestUnits:
    def test_dbm_zero_is_one_mw(self):
        assert dbm_to_mw(0.0) == pytest.approx(1.0)

    def test_paper_tx_power(self):
        assert dbm_to_mw(15.0) == pytest.approx(31.62, rel=1e-3)

    def test_paper_rx_thresh(self):
        assert dbm_to_mw(-71.0) == pytest.approx(7.9433e-8, rel=1e-3)

    def test_roundtrip(self):
        assert mw_to_dbm(dbm_to_mw(-42.5)) == pytest.approx(-42.5)

    def test_mw_to_dbm_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            mw_to_dbm(0.0)


class TestPhyParams:
    def test_defaults_match_paper_figure2(self):
        p = PhyParams()
        assert p.tx_power_dbm == 15.0
        assert p.rx_thresh_dbm == -71.0
        assert p.cs_thresh_dbm == -77.0
        assert p.noise_dbm == -101.0
        assert p.sinr_thresh == 10.0
        assert p.ideal_range_m == 200.0
        assert p.carrier_sense_range_m == 299.0

    def test_broadcast_slower_than_unicast(self):
        p = PhyParams()
        assert p.tx_duration(512, broadcast=True) > p.tx_duration(512)

    def test_duration_scales_with_size(self):
        p = PhyParams()
        assert p.tx_duration(1024) > p.tx_duration(512)

    def test_512b_unicast_duration(self):
        p = PhyParams()
        # (512+58)*8 bits at 11 Mbps
        assert p.tx_duration(512) == pytest.approx(570 * 8 / 11e6)


class TestPathLossCalibration:
    """The paper's thresholds must fall out of the two-ray model."""

    def setup_method(self):
        self.p = PhyParams()
        self.model = default_pathloss(self.p)

    def test_rx_range_is_200m(self):
        rng = self.model.range_for_threshold(self.p.tx_power_mw,
                                             self.p.rx_thresh_mw)
        assert rng == pytest.approx(200.0, rel=0.02)

    def test_cs_range_is_299m(self):
        rng = self.model.range_for_threshold(self.p.tx_power_mw,
                                             self.p.cs_thresh_mw)
        assert rng == pytest.approx(299.0, rel=0.02)

    def test_power_at_200m_meets_rx_thresh(self):
        rx = self.model.received_power_mw(self.p.tx_power_mw, 200.0)
        assert mw_to_dbm(rx) == pytest.approx(-71.0, abs=0.3)

    def test_crossover_between_ranges(self):
        assert 200.0 < self.model.crossover_m < 299.0

    def test_monotonically_decreasing(self):
        prev = math.inf
        for d in (1, 50, 150, 226, 250, 400, 1000):
            cur = self.model.received_power_mw(self.p.tx_power_mw, float(d))
            assert cur < prev
            prev = cur

    def test_zero_distance_full_power(self):
        assert self.model.received_power_mw(10.0, 0.0) == 10.0


class TestFreeSpaceAndPowerLaw:
    def test_free_space_inverse_square(self):
        m = FreeSpace(wavelength_m=0.125)
        p1 = m.received_power_mw(10.0, 100.0)
        p2 = m.received_power_mw(10.0, 200.0)
        assert p1 / p2 == pytest.approx(4.0)

    def test_power_law_reference_calibration(self):
        m = InversePowerLaw(alpha=2.0)
        rx = m.received_power_mw(dbm_to_mw(15.0), 200.0)
        assert rx == pytest.approx(dbm_to_mw(-71.0), rel=1e-6)

    def test_power_law_alpha_effect(self):
        shallow = InversePowerLaw(alpha=2.0)
        steep = InversePowerLaw(alpha=4.0)
        # Both are calibrated at 200 m; beyond it the steeper decays faster.
        assert (steep.received_power_mw(1.0, 400.0)
                < shallow.received_power_mw(1.0, 400.0))


class _Env:
    """Minimal static NodeEnvironment for channel tests."""

    def __init__(self, positions):
        self.positions = dict(positions)
        self.dead = set()

    def position_of(self, node_id):
        return self.positions[node_id]

    def nodes_near(self, pos, radius):
        out = []
        for nid, p in self.positions.items():
            if nid in self.dead:
                continue
            if math.hypot(p[0] - pos[0], p[1] - pos[1]) <= radius:
                out.append(nid)
        return out

    def is_alive(self, node_id):
        return node_id not in self.dead

    def distance(self, a, b):
        return math.hypot(a[0] - b[0], a[1] - b[1])


class TestSINRChannel:
    def make(self, positions):
        sim = Simulator()
        env = _Env(positions)
        ch = SINRChannel(sim, env)
        return sim, env, ch

    def test_delivery_in_range(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "hello", 0.001)
        sim.run()
        assert got == ["hello"]

    def test_no_delivery_out_of_range(self):
        sim, env, ch = self.make({0: (0, 0), 1: (500, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "hello", 0.001)
        sim.run()
        assert got == []

    def test_dead_node_does_not_receive(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        env.dead.add(1)
        ch.transmit(0, "hello", 0.001)
        sim.run()
        assert got == []

    def test_collision_destroys_both_at_midpoint(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0), 2: (200, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "a", 0.001)
        ch.transmit(2, "b", 0.001)
        sim.run()
        # Node 1 sits equidistant: SINR ~ 1 << 10 for both frames.
        assert got == []
        assert ch.frames_lost_collision >= 2

    def test_capture_effect_near_transmitter(self):
        # Receiver very close to one transmitter, far from the interferer:
        # the strong frame is captured despite the overlap.
        sim, env, ch = self.make({0: (0, 0), 1: (10, 0), 2: (280, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "strong", 0.001)
        ch.transmit(2, "weak", 0.001)
        sim.run()
        assert "strong" in got
        assert "weak" not in got

    def test_half_duplex_sender_misses(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0)})
        got = []
        ch.attach(0, lambda rx, frame, power: got.append(frame))
        ch.attach(1, lambda rx, frame, power: None)
        ch.transmit(0, "a", 0.001)
        ch.transmit(1, "b", 0.001)  # overlaps: 0 is transmitting
        sim.run()
        assert got == []

    def test_carrier_busy_within_cs_range(self):
        sim, env, ch = self.make({0: (0, 0), 1: (250, 0)})
        ch.attach(1, lambda rx, frame, power: None)
        ch.transmit(0, "x", 0.01)
        assert ch.carrier_busy(1)

    def test_carrier_idle_when_silent(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0)})
        assert not ch.carrier_busy(1)

    def test_is_transmitting(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0)})
        ch.transmit(0, "x", 0.01)
        assert ch.is_transmitting(0)
        assert not ch.is_transmitting(1)

    def test_stats_counters(self):
        sim, env, ch = self.make({0: (0, 0), 1: (100, 0)})
        ch.attach(1, lambda rx, frame, power: None)
        ch.transmit(0, "x", 0.001)
        sim.run()
        assert ch.frames_sent == 1
        assert ch.frames_delivered == 1


class TestProtocolChannel:
    def make(self, positions, delta=0.0):
        sim = Simulator()
        env = _Env(positions)
        ch = ProtocolChannel(sim, env, range_m=200.0, delta=delta)
        return sim, env, ch

    def test_delivery_within_unit_disk(self):
        sim, env, ch = self.make({0: (0, 0), 1: (150, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "hi", 0.001)
        sim.run()
        assert got == ["hi"]

    def test_no_delivery_beyond_radius(self):
        sim, env, ch = self.make({0: (0, 0), 1: (201, 0)})
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "hi", 0.001)
        sim.run()
        assert got == []

    def test_interference_guard_zone(self):
        # Receiver 1 within range of both 0 and 2: simultaneous tx collide.
        sim, env, ch = self.make({0: (0, 0), 1: (150, 0), 2: (300, 0)},
                                 delta=0.0)
        got = []
        ch.attach(1, lambda rx, frame, power: got.append(frame))
        ch.transmit(0, "a", 0.001)
        ch.transmit(2, "b", 0.001)
        sim.run()
        assert got == []

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ProtocolChannel(Simulator(), _Env({}), range_m=0.0)
        with pytest.raises(ValueError):
            ProtocolChannel(Simulator(), _Env({}), range_m=1.0, delta=-0.1)
