"""Tests for deployment areas, metrics and the spatial grid."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    PlaneMetric,
    SpatialGrid,
    TorusMetric,
    area_side_for_density,
    critical_range_for_connectivity,
    expected_degree,
)


class TestPlaneMetric:
    def test_euclidean_distance(self):
        m = PlaneMetric(side=10.0)
        assert m.distance((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_distance_sq(self):
        m = PlaneMetric(side=10.0)
        assert m.distance_sq((0, 0), (3, 4)) == pytest.approx(25.0)

    def test_wrap_clamps(self):
        m = PlaneMetric(side=10.0)
        assert m.wrap((-1.0, 11.0)) == (0.0, 10.0)

    def test_properties(self):
        m = PlaneMetric(side=4.0)
        assert not m.is_torus
        assert m.area == 16.0


class TestTorusMetric:
    def test_short_way_around(self):
        m = TorusMetric(side=10.0)
        assert m.distance((0.5, 0), (9.5, 0)) == pytest.approx(1.0)

    def test_interior_matches_plane(self):
        t = TorusMetric(side=10.0)
        p = PlaneMetric(side=10.0)
        assert t.distance((2, 2), (3, 5)) == pytest.approx(p.distance((2, 2), (3, 5)))

    def test_wrap_modulo(self):
        m = TorusMetric(side=10.0)
        assert m.wrap((11.0, -1.0)) == (1.0, 9.0)

    def test_max_distance_is_half_diagonal(self):
        m = TorusMetric(side=10.0)
        assert m.distance((0, 0), (5, 5)) == pytest.approx(math.sqrt(50))

    @given(st.floats(0, 10), st.floats(0, 10), st.floats(0, 10), st.floats(0, 10))
    @settings(max_examples=50)
    def test_torus_never_longer_than_plane(self, ax, ay, bx, by):
        t = TorusMetric(side=10.0)
        p = PlaneMetric(side=10.0)
        assert t.distance((ax, ay), (bx, by)) <= p.distance((ax, ay), (bx, by)) + 1e-9


class TestDensityScaling:
    def test_area_gives_target_degree(self):
        side = area_side_for_density(n=200, radio_range=200.0, avg_degree=10.0)
        assert expected_degree(200, 200.0, side) == pytest.approx(10.0)

    def test_larger_network_larger_area(self):
        small = area_side_for_density(100, 200.0, 10.0)
        big = area_side_for_density(800, 200.0, 10.0)
        assert big > small

    def test_denser_network_smaller_area(self):
        sparse = area_side_for_density(200, 200.0, 7.0)
        dense = area_side_for_density(200, 200.0, 25.0)
        assert dense < sparse

    @pytest.mark.parametrize("bad", [(0, 200.0, 10.0), (100, 0.0, 10.0),
                                     (100, 200.0, 0.0)])
    def test_invalid_args_rejected(self, bad):
        with pytest.raises(ValueError):
            area_side_for_density(*bad)

    def test_critical_range_shrinks_with_n(self):
        assert (critical_range_for_connectivity(1000)
                < critical_range_for_connectivity(100))

    def test_critical_range_needs_two_nodes(self):
        with pytest.raises(ValueError):
            critical_range_for_connectivity(1)


class TestSpatialGrid:
    def _brute_force(self, positions, center, radius, side, torus):
        out = []
        for nid, p in positions.items():
            dx = abs(p[0] - center[0])
            dy = abs(p[1] - center[1])
            if torus:
                dx = min(dx, side - dx)
                dy = min(dy, side - dy)
            if dx * dx + dy * dy <= radius * radius:
                out.append(nid)
        return sorted(out)

    def test_insert_and_query(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0)
        grid.insert(1, (50, 50))
        grid.insert(2, (55, 50))
        grid.insert(3, (90, 90))
        assert sorted(grid.within((50, 50), 10.0)) == [1, 2]

    def test_neighbors_excludes_self(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0)
        grid.insert(1, (50, 50))
        grid.insert(2, (52, 50))
        assert grid.neighbors_of(1, 10.0) == [2]

    def test_remove(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0)
        grid.insert(1, (50, 50))
        grid.remove(1)
        assert grid.within((50, 50), 10.0) == []
        assert 1 not in grid

    def test_remove_missing_is_noop(self):
        SpatialGrid(side=10.0, cell_size=1.0).remove(42)

    def test_reinsert_moves_node(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0)
        grid.insert(1, (10, 10))
        grid.insert(1, (90, 90))
        assert grid.within((10, 10), 5.0) == []
        assert grid.within((90, 90), 5.0) == [1]
        assert len(grid) == 1

    def test_boundary_point_included(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0)
        grid.insert(1, (100.0, 100.0))
        assert grid.within((99.0, 99.0), 2.0) == [1]

    def test_radius_inclusive(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0)
        grid.insert(1, (50, 50))
        grid.insert(2, (60, 50))
        assert 2 in grid.within((50, 50), 10.0)

    def test_torus_wraps(self):
        grid = SpatialGrid(side=100.0, cell_size=10.0, torus=True)
        grid.insert(1, (1, 50))
        grid.insert(2, (99, 50))
        assert sorted(grid.within((0, 50), 5.0)) == [1, 2]

    def test_zero_radius_empty(self):
        grid = SpatialGrid(side=10.0, cell_size=1.0)
        grid.insert(1, (5, 5))
        assert grid.within((5, 5), 0.0) == []

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SpatialGrid(side=0.0, cell_size=1.0)
        with pytest.raises(ValueError):
            SpatialGrid(side=1.0, cell_size=0.0)

    @given(st.integers(0, 1000), st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_matches_brute_force(self, seed, torus):
        rng = random.Random(seed)
        side = 100.0
        grid = SpatialGrid(side=side, cell_size=13.0, torus=torus)
        positions = {}
        for nid in range(40):
            p = (rng.uniform(0, side), rng.uniform(0, side))
            positions[nid] = p
            grid.insert(nid, p)
        center = (rng.uniform(0, side), rng.uniform(0, side))
        radius = rng.uniform(1.0, 40.0)
        assert sorted(grid.within(center, radius)) == self._brute_force(
            positions, center, radius, side, torus)
