"""Tests for the deterministic-quorum and geographic baselines."""

import random

import pytest

from repro.baselines import (
    GeographicLocationService,
    GridConfiguration,
    GridStrategy,
    MajorityStrategy,
    geographic_hash,
    greedy_route,
)
from repro.simnet import NetworkConfig, SimNetwork


def make_net(n=100, seed=0, **kw):
    kw.setdefault("avg_degree", 10)
    return SimNetwork(NetworkConfig(n=n, seed=seed, **kw))


class TestMajority:
    def test_quorum_is_a_majority(self):
        net = make_net()
        strategy = MajorityStrategy(rng=random.Random(1))
        res = strategy.advertise(net, 0, lambda v: None, 0)
        assert res.quorum_size >= net.n_alive // 2 + 1

    def test_any_two_majorities_intersect(self):
        net = make_net()
        strategy = MajorityStrategy(rng=random.Random(1))
        s1, s2 = set(), set()
        strategy.advertise(net, 0, s1.add, 0)
        strategy.advertise(net, 50, s2.add, 0)
        assert s1 & s2

    def test_guaranteed_lookup_hit(self):
        net = make_net()
        strategy = MajorityStrategy(rng=random.Random(2))
        stored = set()
        strategy.advertise(net, 0, stored.add, 0)
        for looker in (10, 40, 90):
            res = strategy.lookup(net, looker,
                                  lambda v: "x" if v in stored else None, 0)
            assert res.found

    def test_much_costlier_than_sqrt_quorums(self):
        net = make_net()
        strategy = MajorityStrategy(rng=random.Random(3))
        res = strategy.advertise(net, 0, lambda v: None, 0)
        # ~n/2 routed contacts vs ~2 sqrt(n) for the probabilistic scheme.
        assert res.messages > 4 * (2 * net.n_alive ** 0.5)

    def test_strict_failure_when_majority_unreachable(self):
        net = make_net(seed=2)
        # Kill just under half: a majority of the ORIGINAL population of
        # the original size can still be formed from survivors, so kill
        # the nodes after sampling begins — simplest: fail 60%.
        victims = net.alive_nodes()[1:61]
        for v in victims:
            net.fail_node(v)
        strategy = MajorityStrategy(rng=random.Random(4))
        res = strategy.advertise(net, 0, lambda v: None, 0)
        # A majority of the surviving population is still assembled.
        assert res.quorum_size >= net.n_alive // 2 + 1 or not res.success


class TestGrid:
    def test_row_and_column_intersect(self):
        net = make_net()
        grid = GridConfiguration(net)
        for origin, looker in ((0, 50), (13, 87), (5, 5)):
            row = set(grid.row(grid.row_of(origin)))
            col = set(grid.column(grid.column_of(looker)))
            assert row & col

    def test_quorum_size_is_sqrt_n(self):
        net = make_net()
        grid = GridConfiguration(net)
        assert len(grid.row(0)) == grid.side == 10

    def test_end_to_end_advertise_lookup(self):
        net = make_net(seed=5)
        grid = GridConfiguration(net)
        row = GridStrategy(grid, "row")
        col = GridStrategy(grid, "column")
        stored = set()
        adv = row.advertise(net, 7, stored.add, 0)
        assert adv.success
        res = col.lookup(net, 42, lambda v: "x" if v in stored else None, 0)
        assert res.found

    def test_single_crash_breaks_strict_write(self):
        net = make_net(seed=6)
        grid = GridConfiguration(net)
        row = GridStrategy(grid, "row")
        members = grid.row(grid.row_of(7))
        net.fail_node([m for m in members if m != 7][0])
        adv = row.advertise(net, 7, lambda v: None, 0)
        assert not adv.success  # strict semantics void

    def test_reconfigure_restores_operation(self):
        net = make_net(seed=6)
        grid = GridConfiguration(net)
        row = GridStrategy(grid, "row")
        members = grid.row(grid.row_of(7))
        net.fail_node([m for m in members if m != 7][0])
        grid.reconfigure()
        adv = row.advertise(net, 7, lambda v: None, 0)
        assert adv.success

    def test_invalid_axis(self):
        net = make_net()
        with pytest.raises(ValueError):
            GridStrategy(GridConfiguration(net), axis="diagonal")


class TestGeographicHash:
    def test_deterministic(self):
        assert geographic_hash("k", 100.0) == geographic_hash("k", 100.0)

    def test_in_bounds(self):
        for key in ("a", "b", 42, ("t", 1)):
            x, y = geographic_hash(key, 500.0)
            assert 0 <= x <= 500 and 0 <= y <= 500

    def test_spreads_keys(self):
        points = {geographic_hash(f"k{i}", 100.0) for i in range(50)}
        assert len(points) == 50


class TestGreedyRouting:
    def test_reaches_local_minimum_near_target(self):
        net = make_net(seed=7)
        target = net.position(80)
        result = greedy_route(net, 0, target)
        assert result.reached is not None
        # The reached node is at least as close as the origin.
        assert (net.distance(net.position(result.reached), target)
                <= net.distance(net.position(0), target) + 1e-9)

    def test_path_hops_are_links(self):
        net = make_net(seed=7)
        result = greedy_route(net, 0, net.position(80))
        for a, b in zip(result.path, result.path[1:]):
            assert net.in_range(a, b)

    def test_messages_counted(self):
        net = make_net(seed=7)
        result = greedy_route(net, 0, net.position(80))
        assert result.messages >= len(result.path) - 1


class TestGeographicService:
    def test_advertise_then_lookup(self):
        net = make_net(seed=8)
        geo = GeographicLocationService(net)
        assert geo.advertise(0, "cam", "north-gate").success
        res = geo.lookup(70, "cam")
        assert res.success and res.value == "north-gate"

    def test_replication_on_home_set(self):
        net = make_net(seed=8)
        geo = GeographicLocationService(net, replication=3)
        geo.advertise(0, "k", "v")
        assert len(geo.replicas_of("k")) >= 2

    def test_lookup_missing_key(self):
        net = make_net(seed=8)
        geo = GeographicLocationService(net)
        assert not geo.lookup(5, "ghost").success

    def test_cheap_in_static_networks(self):
        net = make_net(seed=9)
        geo = GeographicLocationService(net)
        a = geo.advertise(0, "k", "v")
        l = geo.lookup(60, "k")
        # O(diameter) messages, far below quorum accesses.
        assert a.messages + l.messages < 4 * net.n_alive ** 0.5

    def test_degrades_under_mobility(self):
        """The known GHT weakness: data stays put while the 'home node'
        near the hash point changes as nodes move."""
        net = make_net(seed=10, mobility="waypoint", max_speed=15.0)
        geo = GeographicLocationService(net)
        keys = [f"k{i}" for i in range(8)]
        rng = random.Random(1)
        for key in keys:
            geo.advertise(net.random_alive_node(rng), key, key)
        net.advance(180.0)  # nodes drift far from their hash points
        hits = sum(geo.lookup(net.random_alive_node(rng), k).success
                   for k in keys)
        # Not asserting failure (small nets are forgiving) but it must not
        # crash, and the API reports honestly.
        assert 0 <= hits <= len(keys)

    def test_invalid_replication(self):
        with pytest.raises(ValueError):
            GeographicLocationService(make_net(), replication=0)
