"""Tests for deterministic RNG streams."""

from repro.sim import RngRegistry


class TestRngRegistry:
    def test_same_seed_same_sequence(self):
        a = RngRegistry(7).stream("mobility")
        b = RngRegistry(7).stream("mobility")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_give_different_streams(self):
        reg = RngRegistry(7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_give_different_streams(self):
        a = RngRegistry(1).stream("x").random()
        b = RngRegistry(2).stream("x").random()
        assert a != b

    def test_stream_is_cached(self):
        reg = RngRegistry(3)
        assert reg.stream("x") is reg.stream("x")

    def test_numpy_stream_deterministic(self):
        a = RngRegistry(5).numpy_stream("w").random(3)
        b = RngRegistry(5).numpy_stream("w").random(3)
        assert list(a) == list(b)

    def test_numpy_and_stdlib_streams_independent(self):
        reg = RngRegistry(5)
        reg.stream("x").random()
        first = RngRegistry(5)
        assert reg.numpy_stream("x").random() == first.numpy_stream("x").random()

    def test_fork_changes_streams(self):
        reg = RngRegistry(9)
        child = reg.fork("run", 0)
        assert reg.stream("x").random() != child.stream("x").random()

    def test_fork_deterministic(self):
        a = RngRegistry(9).fork("run", 3).stream("x").random()
        b = RngRegistry(9).fork("run", 3).stream("x").random()
        assert a == b

    def test_fork_offsets_differ(self):
        reg = RngRegistry(9)
        a = reg.fork("run", 1).stream("x").random()
        b = reg.fork("run", 2).stream("x").random()
        assert a != b
