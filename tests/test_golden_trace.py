"""Golden-trace conformance: the simulator's observable behavior is
pinned by a committed fig8 trace + summary (see tests/golden/README.md).

Three layers, strict to loose:

1. the committed summary matches the committed trace (fixture
   self-consistency — catches hand-edited or stale fixtures),
2. a regenerated run is byte-identical to the committed trace
   (full determinism of the event stream),
3. ``repro obs diff --fail-on-change`` between committed and regenerated
   traces exits 0 — the exact gate CI runs.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.query import diff_summaries, summarize_trace, summary_to_jsonable

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "fig8_trace.jsonl"
GOLDEN_SUMMARY = GOLDEN_DIR / "fig8_summary.json"
REPO_ROOT = Path(__file__).resolve().parent.parent

# Must match the regeneration recipe in tests/golden/README.md.
FIG8_ARGS = ["fig8", "--n", "25", "--keys", "2", "--lookups", "8"]


def _regenerate(tmp_path: Path) -> Path:
    trace = tmp_path / "fresh.jsonl"
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_JOBS"] = "1"  # byte-stable line order
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *FIG8_ARGS, "--trace", str(trace)],
        capture_output=True, text=True, env=env, cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert trace.exists()
    return trace


@pytest.fixture(scope="module")
def fresh_trace(tmp_path_factory) -> Path:
    return _regenerate(tmp_path_factory.mktemp("golden"))


def test_committed_summary_matches_committed_trace():
    produced = summary_to_jsonable(summarize_trace(str(GOLDEN_TRACE)))
    committed = json.loads(GOLDEN_SUMMARY.read_text())
    assert produced == committed, (
        "fixture drift: regenerate per tests/golden/README.md")


def test_regenerated_trace_is_byte_identical(fresh_trace):
    assert fresh_trace.read_bytes() == GOLDEN_TRACE.read_bytes(), (
        "event stream changed; if intentional, regenerate the fixtures")


def test_regenerated_summary_has_no_diff(fresh_trace):
    changes = diff_summaries(summarize_trace(str(GOLDEN_TRACE)),
                             summarize_trace(str(fresh_trace)))
    assert changes == []


def test_obs_diff_gate_passes(fresh_trace):
    # The exact command CI runs as its conformance gate.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "diff", str(GOLDEN_TRACE),
         str(fresh_trace), "--fail-on-change"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_obs_diff_gate_detects_change(fresh_trace, tmp_path):
    # Flip one hit to a miss: the gate must fail loudly, not silently.
    lines = GOLDEN_TRACE.read_text().splitlines()
    mutated, flipped = [], False
    for line in lines:
        if (not flipped and '"kind":"access-end"' in line
                and '"access":"lookup"' in line and '"found":true' in line):
            line = line.replace('"found":true', '"found":false')
            flipped = True
        mutated.append(line)
    assert flipped, "golden trace has no lookup hit to flip"
    bad = tmp_path / "mutated.jsonl"
    bad.write_text("\n".join(mutated) + "\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "diff", str(GOLDEN_TRACE),
         str(bad), "--fail-on-change"],
        capture_output=True, text=True, env=env)
    assert proc.returncode != 0
