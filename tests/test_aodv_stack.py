"""Tests for AODV routing and the full packet-level stack."""

import pytest

from repro.net import FloodPacket
from repro.stack import AdhocStack, StackConfig


def line_stack(n=5, seed=0):
    """A connected stack whose nodes we control less precisely; use the
    default random placement but require a moderate density."""
    return AdhocStack(StackConfig(n=n, avg_degree=8, seed=seed))


class TestAodvDataDelivery:
    def test_single_hop_delivery(self):
        stack = line_stack(n=10, seed=1)
        stack.run(0.5)
        # Find a pair of direct neighbors.
        src = 0
        nbrs = stack.env.nodes_near(stack.env.position_of(src), 200.0)
        dst = next(n for n in nbrs if n != src)
        stack.send(src, dst, "one-hop")
        stack.run(3.0)
        assert ("one-hop", src) in stack.delivered_to(dst)

    def test_multi_hop_delivery(self):
        stack = line_stack(n=20, seed=2)
        stack.run(0.5)
        stack.send(0, 19, "far")
        stack.run(8.0)
        assert ("far", 0) in stack.delivered_to(19)

    def test_route_discovery_generates_control_traffic(self):
        stack = line_stack(n=15, seed=3)
        stack.run(0.5)
        before = stack.total_control_messages()
        stack.send(0, 14, "x")
        stack.run(5.0)
        assert stack.total_control_messages() > before

    def test_route_reuse_cheaper_than_discovery(self):
        stack = line_stack(n=15, seed=3)
        stack.run(0.5)
        stack.send(0, 14, "first")
        stack.run(5.0)
        after_first = stack.total_control_messages()
        stack.send(0, 14, "second")
        stack.run(5.0)
        after_second = stack.total_control_messages()
        assert ("second", 0) in stack.delivered_to(14)
        # Second send rides the cached route: little or no new control.
        assert after_second - after_first <= after_first

    def test_send_to_self_delivers_locally(self):
        stack = line_stack(n=5, seed=4)
        stack.nodes[0].send(0, "loop")
        stack.run(0.1)
        assert ("loop", 0) in stack.delivered_to(0)

    def test_sequence_of_messages(self):
        stack = line_stack(n=12, seed=5)
        stack.run(0.5)
        for i in range(4):
            stack.send(1, 9, f"m{i}")
        stack.run(8.0)
        got = [p for p, s in stack.delivered_to(9) if s == 1]
        assert sorted(got) == [f"m{i}" for i in range(4)]

    def test_crashed_destination_not_delivered(self):
        stack = line_stack(n=12, seed=6)
        stack.run(0.5)
        stack.crash(9)
        stack.send(0, 9, "dead-letter")
        stack.run(6.0)
        assert stack.delivered_to(9) == []

    def test_aodv_stats_exposed(self):
        stack = line_stack(n=12, seed=7)
        stack.run(0.5)
        stack.send(0, 11, "x")
        stack.run(5.0)
        total_rreq = sum(nd.aodv.rreq_sent for nd in stack.nodes.values())
        assert total_rreq >= 1


class TestStackFlooding:
    def test_ttl1_reaches_neighbors_only(self):
        stack = line_stack(n=20, seed=8)
        stack.run(0.5)
        origin = 0
        neighbors = set(stack.env.nodes_near(stack.env.position_of(origin),
                                             200.0)) - {origin}
        stack.flood(origin, "near", ttl=1)
        stack.run(2.0)
        receivers = {d for d, p, s in stack.received if p == "near"}
        # Originator always delivers locally; others must be neighbors.
        assert origin in receivers
        assert receivers - {origin} <= neighbors

    def test_large_ttl_floods_whole_network(self):
        stack = line_stack(n=15, seed=9)
        stack.run(0.5)
        stack.flood(0, "everywhere", ttl=30)
        stack.run(5.0)
        receivers = {d for d, p, s in stack.received if p == "everywhere"}
        assert len(receivers) >= 13  # near-total coverage (broadcast losses possible)

    def test_coverage_monotone_in_ttl(self):
        cov = {}
        for ttl in (1, 3):
            stack = line_stack(n=25, seed=10)
            stack.run(0.5)
            stack.flood(0, "probe", ttl=ttl)
            stack.run(4.0)
            cov[ttl] = len({d for d, p, s in stack.received if p == "probe"})
        assert cov[3] >= cov[1]

    def test_flood_ttl_must_be_positive(self):
        stack = line_stack(n=5, seed=11)
        with pytest.raises(ValueError):
            stack.flood(0, "x", ttl=0)


class TestMobileStack:
    def test_mobile_network_still_delivers(self):
        stack = AdhocStack(StackConfig(n=15, avg_degree=10, seed=12,
                                       mobility="waypoint", max_speed=2.0))
        stack.run(1.0)
        stack.send(0, 10, "moving")
        stack.run(8.0)
        # Delivery is probabilistic under mobility; route discovery retries
        # should usually succeed in a dense 15-node network.
        delivered = ("moving", 0) in stack.delivered_to(10)
        assert delivered or stack.total_control_messages() > 0

    def test_protocol_channel_variant(self):
        stack = AdhocStack(StackConfig(n=12, avg_degree=8, seed=13,
                                       channel="protocol"))
        stack.run(0.5)
        stack.send(0, 8, "proto")
        stack.run(6.0)
        assert ("proto", 0) in stack.delivered_to(8)

    def test_unknown_channel_rejected(self):
        with pytest.raises(ValueError):
            AdhocStack(StackConfig(n=5, channel="magic"))
