"""Tests for random walks, max-degree sampling, and reverse-path replies."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.randomwalk import (
    max_degree_walk_sample,
    random_walk,
    reverse_path_of,
    send_reply,
)
from repro.simnet import NetworkConfig, SimNetwork


def make_net(n=80, seed=0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


class TestRandomWalk:
    def test_visits_target_unique_nodes(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=10, rng=random.Random(1))
        assert result.completed
        assert result.unique_count == 10

    def test_visited_are_distinct(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=15, rng=random.Random(1))
        assert len(set(result.visited)) == len(result.visited)

    def test_start_node_is_first_visited(self):
        net = make_net()
        result = random_walk(net, 3, target_unique=5, rng=random.Random(1))
        assert result.visited[0] == 3
        assert result.path[0] == 3

    def test_path_steps_consistent(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=10, rng=random.Random(1))
        assert len(result.path) == result.steps + 1

    def test_path_hops_are_edges(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=10, rng=random.Random(1))
        # Consecutive path nodes were within range when traversed; in a
        # static network they still are.
        for a, b in zip(result.path, result.path[1:]):
            assert net.in_range(a, b)

    def test_unique_walk_no_revisits_small_target(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=10, unique=True,
                             rng=random.Random(1))
        assert result.steps == result.unique_count - 1

    def test_simple_walk_costs_at_least_unique(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=20, rng=random.Random(2))
        assert result.steps >= result.unique_count - 1

    def test_visit_callback_called_once_per_unique(self):
        net = make_net()
        seen = []
        random_walk(net, 0, target_unique=12, visit=seen.append,
                    rng=random.Random(1))
        assert len(seen) == 12
        assert len(set(seen)) == 12

    def test_stop_predicate_halts_early(self):
        net = make_net()
        target_node = net.true_neighbors(0)[0]
        result = random_walk(net, 0, target_unique=50,
                             stop_predicate=lambda v: v == target_node,
                             rng=random.Random(1))
        assert result.halted_early
        assert result.halted_at == target_node
        assert result.unique_count < 50

    def test_stop_predicate_on_start(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=50,
                             stop_predicate=lambda v: v == 0)
        assert result.halted_early and result.halted_at == 0
        assert result.steps == 0

    def test_max_steps_caps_walk(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=79, max_steps=5,
                             rng=random.Random(1))
        assert not result.completed
        assert result.steps <= 5

    def test_dead_start_node(self):
        net = make_net()
        net.fail_node(0)
        result = random_walk(net, 0, target_unique=5)
        assert result.dropped and not result.completed

    def test_walk_dropped_without_salvation_on_stale_tables(self):
        # With everything dead except the start, no forwarding possible.
        net = make_net(n=30)
        for v in net.alive_nodes():
            if v != 0:
                net.fail_node(v)
        result = random_walk(net, 0, target_unique=5, salvation=False)
        assert result.dropped

    def test_salvation_retries_within_step(self):
        net = make_net(seed=3)
        # Kill half of node 0's neighbors but leave tables stale: salvation
        # must find a live one.
        nbrs = net.true_neighbors(0)
        for v in nbrs[: len(nbrs) // 2]:
            net.fail_node(v)
        result = random_walk(net, 0, target_unique=5, salvation=True,
                             rng=random.Random(4))
        assert result.completed

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            random_walk(make_net(), 0, target_unique=0)

    def test_messages_at_least_steps(self):
        net = make_net()
        result = random_walk(net, 0, target_unique=15, rng=random.Random(1))
        assert result.messages >= result.steps

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_walk_invariants(self, seed):
        net = make_net(n=50, seed=seed % 5)
        result = random_walk(net, 0, target_unique=8,
                             rng=random.Random(seed))
        assert set(result.visited) <= set(result.path)
        assert result.unique_count == len(set(result.path))


class TestMaxDegreeWalk:
    def test_returns_a_live_node(self):
        net = make_net()
        sample = max_degree_walk_sample(net, 0, walk_length=40,
                                        rng=random.Random(1))
        assert sample.node is not None
        assert net.is_alive(sample.node)

    def test_messages_bounded_by_steps_plus_salvage(self):
        net = make_net()
        sample = max_degree_walk_sample(net, 0, walk_length=40,
                                        rng=random.Random(1))
        assert sample.steps == 40
        assert sample.messages <= sample.steps * 10

    def test_self_loops_are_free(self):
        net = make_net()
        sample = max_degree_walk_sample(net, 0, walk_length=60,
                                        max_degree=10_000,
                                        rng=random.Random(1))
        # With a huge max degree nearly every step self-loops.
        assert sample.messages < 10

    def test_path_starts_at_origin(self):
        net = make_net()
        sample = max_degree_walk_sample(net, 0, walk_length=30,
                                        rng=random.Random(2))
        assert sample.path[0] == 0
        assert sample.path[-1] == sample.node

    def test_sampling_roughly_uniform(self):
        net = make_net(n=40, seed=5)
        rng = random.Random(0)
        counts = {}
        for _ in range(150):
            s = max_degree_walk_sample(net, 0, walk_length=40, rng=rng)
            if s.node is not None:
                counts[s.node] = counts.get(s.node, 0) + 1
        # Should spread over a large fraction of the network.
        assert len(counts) >= 25


class TestReversePathOf:
    def test_simple_reversal(self):
        assert reverse_path_of([1, 2, 3]) == [3, 2, 1]

    def test_erases_loops(self):
        # Walk 1 -> 2 -> 1 -> 3: the 1->2->1 detour is cut entirely.
        assert reverse_path_of([1, 2, 1, 3]) == [3, 1]

    def test_single_node(self):
        assert reverse_path_of([7]) == [7]

    def test_no_duplicates_in_output(self):
        rp = reverse_path_of([1, 2, 3, 2, 4, 1, 5])
        assert len(set(rp)) == len(rp)

    def test_consecutive_pairs_are_walk_hops(self):
        path = [0, 1, 2, 1, 3, 4, 2, 5]
        hops = {(a, b) for a, b in zip(path, path[1:])}
        hops |= {(b, a) for a, b in zip(path, path[1:])}
        rp = reverse_path_of(path)
        for a, b in zip(rp, rp[1:]):
            assert (a, b) in hops

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=30))
    @settings(max_examples=50)
    def test_properties(self, path):
        rp = reverse_path_of(path)
        assert rp[0] == path[-1]
        assert rp[-1] == path[0]
        assert set(rp) <= set(path)
        assert len(set(rp)) == len(rp)
        hops = {(a, b) for a, b in zip(path, path[1:])}
        hops |= {(b, a) for a, b in zip(path, path[1:])}
        for a, b in zip(rp, rp[1:]):
            assert (a, b) in hops


class TestSendReply:
    def walk_then_reply(self, net, seed=1, **reply_kw):
        result = random_walk(net, 0, target_unique=12,
                             rng=random.Random(seed))
        assert result.completed
        rpath = reverse_path_of(result.path)
        return send_reply(net, rpath, **reply_kw)

    def test_reply_arrives_in_static_network(self):
        net = make_net()
        reply = self.walk_then_reply(net)
        assert reply.success

    def test_empty_path(self):
        assert not send_reply(make_net(), []).success

    def test_already_at_origin(self):
        reply = send_reply(make_net(), [5])
        assert reply.success and reply.messages == 0

    def test_reduction_shortens_path(self):
        net = make_net(seed=2)
        walk = random_walk(net, 0, target_unique=20, rng=random.Random(3))
        rpath = reverse_path_of(walk.path)
        with_red = send_reply(net, rpath, reduction=True)
        without = send_reply(net, rpath, reduction=False)
        assert with_red.success and without.success
        assert with_red.hops_taken <= without.hops_taken

    def test_drop_without_repair_when_path_broken(self):
        net = make_net(seed=2)
        walk = random_walk(net, 0, target_unique=12, rng=random.Random(3))
        rpath = reverse_path_of(walk.path)
        # Kill every interior node: the reply cannot proceed.
        for v in rpath[1:-1]:
            net.fail_node(v)
        reply = send_reply(net, rpath, reduction=False, local_repair=False)
        if len(rpath) > 2 and not net.in_range(rpath[0], rpath[-1]):
            assert not reply.success
            assert reply.dropped_at == rpath[0]

    def test_local_repair_rescues_single_dead_hop(self):
        net = make_net(seed=4)
        walk = random_walk(net, 0, target_unique=15, rng=random.Random(5))
        rpath = reverse_path_of(walk.path)
        if len(rpath) >= 4:
            net.fail_node(rpath[1])  # kill the first reverse hop
            reply = send_reply(net, rpath, reduction=False, local_repair=True)
            assert reply.success
            assert reply.local_repairs + reply.global_repairs >= 1

    def test_global_repair_fallback(self):
        net = make_net(seed=5)
        walk = random_walk(net, 0, target_unique=15, rng=random.Random(6))
        rpath = reverse_path_of(walk.path)
        if len(rpath) >= 4:
            for v in rpath[1:-1]:
                net.fail_node(v)
            reply = send_reply(net, rpath, local_repair=True,
                               allow_global_repair=True)
            # Either a scoped/global route exists or the network got too
            # sparse; when it succeeds a repair must have been used.
            if reply.success and not net.in_range(rpath[0], rpath[-1]):
                assert reply.local_repairs + reply.global_repairs >= 1

    def test_nodes_traversed_recorded(self):
        net = make_net()
        reply = self.walk_then_reply(net)
        assert reply.nodes_traversed[0] != reply.nodes_traversed[-1]
        assert reply.success
