"""Tests for the probabilistic biquorum system and its sizing planner."""

import math
import random
import warnings

import pytest

from repro.analysis import required_quorum_product
from repro.core import (
    FloodingStrategy,
    PathStrategy,
    ProbabilisticBiquorum,
    RandomStrategy,
    UniquePathStrategy,
    plan_sizes,
)
from repro.membership import FullMembership
from repro.simnet import NetworkConfig, SimNetwork


def make_net(n=100, seed=0):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed))


def mk_random(net):
    return RandomStrategy(FullMembership(net))


class TestPlanSizes:
    def test_symmetric_default(self):
        net = make_net()
        sizing = plan_sizes(800, 0.1, mk_random(net), UniquePathStrategy())
        assert sizing.advertise_size == sizing.lookup_size
        assert sizing.product >= required_quorum_product(800, 0.1) - 1
        assert sizing.guaranteed

    def test_explicit_sizes_kept(self):
        net = make_net()
        sizing = plan_sizes(800, 0.1, mk_random(net), UniquePathStrategy(),
                            advertise_size=56, lookup_size=33)
        assert (sizing.advertise_size, sizing.lookup_size) == (56, 33)

    def test_explicit_sizes_recompute_epsilon(self):
        net = make_net()
        sizing = plan_sizes(800, 0.1, mk_random(net), UniquePathStrategy(),
                            advertise_size=56, lookup_size=33)
        assert sizing.epsilon == pytest.approx(math.exp(-56 * 33 / 800))

    def test_one_fixed_size_derives_other(self):
        net = make_net()
        sizing = plan_sizes(800, 0.1, mk_random(net), UniquePathStrategy(),
                            advertise_size=56)
        assert sizing.advertise_size == 56
        assert sizing.advertise_size * sizing.lookup_size >= \
            required_quorum_product(800, 0.1) - 1

    def test_tau_gives_asymmetric_split(self):
        net = make_net()
        sizing = plan_sizes(800, 0.1, mk_random(net), UniquePathStrategy(),
                            tau=10.0, cost_a=5.0, cost_l=1.0)
        # Lemma 5.6 example: |Ql|/|Qa| = 1/2.
        assert sizing.lookup_size / sizing.advertise_size == pytest.approx(
            0.5, rel=0.15)
        assert sizing.product >= required_quorum_product(800, 0.1) - 2

    def test_non_random_mix_warns_and_uses_crossing_sizes(self):
        with pytest.warns(UserWarning, match="crossing"):
            sizing = plan_sizes(800, 0.1, UniquePathStrategy(),
                                UniquePathStrategy())
        assert not sizing.guaranteed
        assert sizing.advertise_size > 100  # ~1.5 n / ln n

    def test_random_mix_does_not_warn(self):
        net = make_net()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            plan_sizes(800, 0.1, mk_random(net), FloodingStrategy())

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            plan_sizes(1, 0.1, UniquePathStrategy(), UniquePathStrategy())


class TestBiquorumOperation:
    def test_write_then_read_intersects(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy(), epsilon=0.05)
        stored = set()
        bq.write(0, stored.add)
        result = bq.read(50, lambda v: "hit" if v in stored else None)
        assert result.found

    def test_access_results_recorded(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy())
        bq.write(0, lambda v: None)
        bq.read(1, lambda v: None)
        assert len(bq.accesses) == 2
        assert bq.accesses[0].kind == "advertise"
        assert bq.accesses[1].kind == "lookup"

    def test_load_tracking(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy())
        bq.write(0, lambda v: None)
        load = bq.load_distribution()
        assert sum(load.values()) == bq.accesses[0].quorum_size

    def test_load_balance_reasonable_over_many_accesses(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy(),
                                   advertise_size=15, lookup_size=15)
        rng = random.Random(0)
        for _ in range(20):
            bq.write(net.random_alive_node(rng), lambda v: None)
        # Uniform-random quorums spread load: no node should dominate.
        assert bq.load_balance_ratio() < 4.0

    def test_empirical_hit_ratio(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy(), epsilon=0.1)
        stored = set()
        bq.write(0, stored.add)
        rng = random.Random(1)
        for _ in range(10):
            bq.read(net.random_alive_node(rng),
                    lambda v: "x" if v in stored else None)
        assert bq.empirical_hit_ratio() >= 0.6

    def test_message_totals(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy())
        bq.write(0, lambda v: None)
        msgs, routing = bq.message_totals()
        assert msgs > 0 and routing >= 0

    def test_resize_tracks_network(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy(), epsilon=0.1)
        before = bq.sizing.lookup_size
        for v in range(30, 60):
            net.fail_node(v)
        bq.resize()
        assert bq.sizing.lookup_size < before

    def test_set_sizes_pins_explicitly(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy())
        sizing = bq.set_sizes(advertise_size=30, lookup_size=7)
        assert (sizing.advertise_size, sizing.lookup_size) == (30, 7)

    def test_no_adjust_keeps_sizes_fixed(self):
        net = make_net()
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=UniquePathStrategy(),
                                   advertise_size=20, lookup_size=20,
                                   adjust_to_network_size=False)
        for v in range(40, 70):
            net.fail_node(v)
        bq.write(0, lambda v: None)
        assert bq.sizing.lookup_size == 20


class TestMixAndMatchEmpirically:
    """Lemma 5.2: one RANDOM side suffices for the intersection bound."""

    @pytest.mark.parametrize("lookup_factory", [
        lambda net: UniquePathStrategy(),
        lambda net: PathStrategy(),
        lambda net: FloodingStrategy(expanding_ring=True),
    ])
    def test_asymmetric_mixes_intersect(self, lookup_factory):
        net = make_net(seed=7)
        n = net.n_alive
        eps = 0.1
        bq = ProbabilisticBiquorum(net, advertise=mk_random(net),
                                   lookup=lookup_factory(net), epsilon=eps)
        rng = random.Random(2)
        hits = 0
        trials = 15
        for t in range(trials):
            stored = set()
            bq.write(net.random_alive_node(rng), stored.add)
            result = bq.read(net.random_alive_node(rng),
                             lambda v: "x" if v in stored else None)
            hits += bool(result.found)
        # Expect >= (1 - eps) minus sampling noise.
        assert hits / trials >= 0.7
