"""Tests for random geometric graph generation and graph measurements."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    bfs_distances,
    connected_components,
    diameter,
    is_connected,
    random_geometric_graph,
    rgg_for_density,
    shortest_path,
    theoretical_diameter_hops,
)


def small_rgg(seed=0, n=60, radius=0.25):
    return random_geometric_graph(n, radius=radius, rng=random.Random(seed))


class TestGeneration:
    def test_node_count(self):
        g = small_rgg()
        assert g.n == 60
        assert len(g.adjacency) == 60

    def test_positions_in_area(self):
        g = small_rgg()
        assert all(0 <= x <= 1 and 0 <= y <= 1 for x, y in g.positions)

    def test_adjacency_symmetric(self):
        g = small_rgg()
        for u, nbrs in enumerate(g.adjacency):
            for v in nbrs:
                assert u in g.adjacency[v]

    def test_no_self_loops(self):
        g = small_rgg()
        for u, nbrs in enumerate(g.adjacency):
            assert u not in nbrs

    def test_edges_respect_radius(self):
        g = small_rgg()
        metric = g.metric
        for u, v in g.edges():
            assert metric.distance(g.positions[u], g.positions[v]) <= g.radius

    def test_non_edges_exceed_radius(self):
        g = small_rgg(n=30)
        metric = g.metric
        for u in range(g.n):
            nbrs = set(g.adjacency[u])
            for v in range(g.n):
                if v != u and v not in nbrs:
                    assert metric.distance(g.positions[u],
                                           g.positions[v]) > g.radius

    def test_deterministic_given_rng(self):
        a = small_rgg(seed=5)
        b = small_rgg(seed=5)
        assert a.positions == b.positions
        assert a.adjacency == b.adjacency

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            random_geometric_graph(0, radius=0.1)

    def test_degree_stats(self):
        g = small_rgg()
        assert g.average_degree() == pytest.approx(
            sum(g.degrees()) / g.n)
        assert g.degree(0) == len(g.adjacency[0])


class TestDensityScaledRgg:
    def test_average_degree_near_target(self):
        g = rgg_for_density(300, avg_degree=10.0, rng=random.Random(2))
        # Boundary effects push the realized mean slightly below target.
        assert 6.0 <= g.average_degree() <= 12.0

    def test_torus_average_degree_closer(self):
        g = rgg_for_density(300, avg_degree=10.0, torus=True,
                            rng=random.Random(2))
        assert 8.0 <= g.average_degree() <= 12.0

    def test_require_connected(self):
        g = rgg_for_density(150, avg_degree=12.0, rng=random.Random(3),
                            require_connected=True)
        assert is_connected(g)


class TestConnectivity:
    def test_connected_components_partition(self):
        g = small_rgg()
        comps = connected_components(g)
        all_nodes = sorted(v for comp in comps for v in comp)
        assert all_nodes == list(range(g.n))

    def test_is_connected_agrees_with_components(self):
        g = small_rgg()
        assert is_connected(g) == (len(connected_components(g)) == 1)

    def test_is_connected_with_ignored_nodes(self):
        g = rgg_for_density(80, avg_degree=12.0, rng=random.Random(4),
                            require_connected=True)
        assert is_connected(g, ignore=set())

    def test_isolated_node_disconnects(self):
        g = random_geometric_graph(5, radius=0.001, rng=random.Random(0))
        assert not is_connected(g) or g.n == 1

    def test_subgraph_without_removes_edges(self):
        g = rgg_for_density(60, avg_degree=12.0, rng=random.Random(5),
                            require_connected=True)
        removed = {0, 1, 2}
        sub = g.subgraph_without(removed)
        assert sub.adjacency[0] == []
        for u in range(sub.n):
            assert not (set(sub.adjacency[u]) & removed)


class TestPathsAndDiameter:
    def test_bfs_distances_source_zero(self):
        g = rgg_for_density(60, avg_degree=12.0, rng=random.Random(6),
                            require_connected=True)
        dist = bfs_distances(g, 0)
        assert dist[0] == 0
        assert len(dist) == g.n

    def test_bfs_triangle_inequality_on_edges(self):
        g = rgg_for_density(60, avg_degree=12.0, rng=random.Random(6),
                            require_connected=True)
        dist = bfs_distances(g, 0)
        for u, v in g.edges():
            assert abs(dist[u] - dist[v]) <= 1

    def test_shortest_path_endpoints(self):
        g = rgg_for_density(60, avg_degree=12.0, rng=random.Random(7),
                            require_connected=True)
        path = shortest_path(g, 0, g.n - 1)
        assert path is not None
        assert path[0] == 0 and path[-1] == g.n - 1

    def test_shortest_path_is_valid_walk(self):
        g = rgg_for_density(60, avg_degree=12.0, rng=random.Random(7),
                            require_connected=True)
        path = shortest_path(g, 0, g.n - 1)
        for a, b in zip(path, path[1:]):
            assert b in g.adjacency[a]

    def test_shortest_path_length_matches_bfs(self):
        g = rgg_for_density(60, avg_degree=12.0, rng=random.Random(7),
                            require_connected=True)
        dist = bfs_distances(g, 0)
        path = shortest_path(g, 0, g.n - 1)
        assert len(path) - 1 == dist[g.n - 1]

    def test_shortest_path_to_self(self):
        g = small_rgg()
        assert shortest_path(g, 3, 3) == [3]

    def test_shortest_path_unreachable(self):
        g = random_geometric_graph(4, radius=0.0001, rng=random.Random(1))
        assert shortest_path(g, 0, 3) is None

    def test_exact_diameter_at_least_double_sweep(self):
        g = rgg_for_density(50, avg_degree=12.0, rng=random.Random(8),
                            require_connected=True)
        assert diameter(g, exact=True) >= diameter(g, exact=False)

    def test_theoretical_diameter_scales_with_sqrt_n(self):
        assert theoretical_diameter_hops(400, 10.0) == pytest.approx(
            2 * theoretical_diameter_hops(100, 10.0))

    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_bfs_distance_symmetry(self, seed):
        g = rgg_for_density(40, avg_degree=12.0, rng=random.Random(seed),
                            require_connected=True)
        d0 = bfs_distances(g, 0)
        for target in (g.n // 2, g.n - 1):
            back = bfs_distances(g, target)
            assert d0[target] == back[0]
