"""Tests for the batched Monte-Carlo replication engine.

The load-bearing guarantee: the ``batched`` backend must be
*statistic-identical* to the ``sequential`` backend for the same seed
list — sharing neighbor tables and BFS route memos across replicas is a
pure optimization, never a semantics change.  These tests assert exact
(field-by-field, not approximate) equality across workloads that stress
every fast-path gate: plain routed scenarios, post-churn routing,
waypoint mobility, and lossy links.
"""

import math
import random

import numpy as np
import pytest

from repro.core.biquorum import ProbabilisticBiquorum
from repro.core.strategies import RandomStrategy, UniquePathStrategy
from repro.experiments.common import (
    ScenarioStats,
    make_membership,
    make_network,
    run_scenario,
    scenario_config,
)
from repro.experiments.montecarlo import (
    ReplicationPlan,
    Welford,
    run_replicated,
    scenario_seed_list,
    scenario_stats_equal,
    summarize_replicas,
    wilson_interval,
)
from repro.services.location import LocationService
from repro.sim.rng import replica_seeds
from repro.simnet.churn import apply_churn


def _random_run(qa=10, ql=8, n_keys=5, n_lookups=30):
    def run(net, rep_seed):
        strategy = RandomStrategy(make_membership(net, "random"))
        return run_scenario(net, strategy, strategy, advertise_size=qa,
                            lookup_size=ql, n_keys=n_keys,
                            n_lookups=n_lookups, n_lookers=10, seed=rep_seed)
    return run


def _assert_replicas_identical(a, b):
    assert a.seeds == b.seeds
    assert a.reps == b.reps
    for left, right in zip(a.stats, b.stats):
        assert scenario_stats_equal(left, right)


class TestStreamingStats:
    def test_welford_matches_numpy(self):
        rng = random.Random(5)
        values = [rng.gauss(3.0, 2.0) for _ in range(200)]
        acc = Welford()
        for v in values:
            acc.update(v)
        assert acc.count == len(values)
        assert acc.mean == pytest.approx(np.mean(values), rel=1e-12)
        assert acc.variance == pytest.approx(np.var(values, ddof=1),
                                             rel=1e-10)

    def test_welford_small_counts(self):
        acc = Welford()
        assert math.isnan(acc.variance)
        acc.update(4.0)
        assert acc.mean == 4.0
        assert math.isnan(acc.halfwidth())
        acc.update(6.0)
        assert acc.mean == 5.0
        assert acc.variance == pytest.approx(2.0)
        assert acc.halfwidth(0.95) > 0

    def test_wilson_interval_contains_proportion(self):
        low, high = wilson_interval(45, 60)
        assert 0.0 <= low < 45 / 60 < high <= 1.0

    def test_wilson_boundaries_stay_informative(self):
        low, high = wilson_interval(60, 60)
        assert high == pytest.approx(1.0) and low < 1.0  # not zero-width
        low0, high0 = wilson_interval(0, 60)
        assert low0 == pytest.approx(0.0) and high0 > 0.0

    def test_wilson_no_trials_is_nan(self):
        low, high = wilson_interval(0, 0)
        assert math.isnan(low) and math.isnan(high)

    def test_wilson_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)

    def test_wider_confidence_widens_interval(self):
        low95, high95 = wilson_interval(30, 60, confidence=0.95)
        low99, high99 = wilson_interval(30, 60, confidence=0.99)
        assert low99 < low95 and high99 > high95


class TestReplicaSeeds:
    def test_prefix_stable(self):
        # A stopping rule can extend a run without changing earlier seeds.
        assert replica_seeds(7, 4) == replica_seeds(7, 16)[:4]

    def test_deterministic_and_distinct(self):
        seeds = replica_seeds(3, 64)
        assert seeds == replica_seeds(3, 64)
        assert len(set(seeds)) == 64
        assert replica_seeds(4, 64) != seeds

    def test_scenario_seed_list_replica0_is_legacy(self):
        # Replica 0 keeps base_seed+1: one replica == historical run.
        seeds = scenario_seed_list(12, 5)
        assert seeds[0] == 13
        assert seeds[1:] == replica_seeds(12, 4)
        assert scenario_seed_list(12, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            replica_seeds(0, -1)


class TestBackendEquivalence:
    def test_batched_identical_to_sequential(self):
        cfg = scenario_config(60, seed=3)
        run = _random_run()
        seq = run_replicated(cfg, run, reps=4, backend="sequential",
                             base_seed=3)
        bat = run_replicated(cfg, run, reps=4, backend="batched",
                             base_seed=3)
        _assert_replicas_identical(seq, bat)
        assert seq.backend == "sequential" and bat.backend == "batched"

    def test_reps1_reproduces_legacy_single_run(self):
        # The exact run every figure module has always performed.
        net = make_network(60, seed=3)
        strategy = RandomStrategy(make_membership(net, "random"))
        legacy = run_scenario(net, strategy, strategy, advertise_size=10,
                              lookup_size=8, n_keys=5, n_lookups=30,
                              n_lookers=10, seed=4)
        for backend in ("batched", "sequential"):
            outcome = run_replicated(scenario_config(60, seed=3),
                                     _random_run(), reps=1, backend=backend,
                                     base_seed=3)
            assert scenario_stats_equal(legacy, outcome.stats[0])

    def test_identical_under_divergent_churn(self):
        # Post-churn topologies differ per replica (workload-driven churn),
        # so the shared route oracle must stop serving mutated networks.
        def run(net, rep_seed):
            membership = make_membership(net, "random")
            rng = random.Random(rep_seed)
            biq = ProbabilisticBiquorum(
                net, advertise=RandomStrategy(membership),
                lookup=RandomStrategy(membership),
                advertise_size=15, lookup_size=12,
                adjust_to_network_size=False)
            service = LocationService(biq)
            keys = [f"key-{i}" for i in range(5)]
            for key in keys:
                service.advertise(net.random_alive_node(rng), key, key)
            apply_churn(net, fail_fraction=0.3, join_fraction=0.3, rng=rng,
                        keep_connected=True)
            membership.refresh()
            hits = sum(
                bool(service.lookup(net.random_alive_node(rng),
                                    rng.choice(keys)).found)
                for _ in range(25))
            return ScenarioStats(n=net.n_alive, lookups=25, hits=hits)

        cfg = scenario_config(80, avg_degree=15.0, seed=7)
        seq = run_replicated(cfg, run, reps=4, backend="sequential",
                             base_seed=7)
        bat = run_replicated(cfg, run, reps=4, backend="batched",
                             base_seed=7)
        _assert_replicas_identical(seq, bat)

    @pytest.mark.slow
    def test_identical_under_waypoint_mobility(self):
        cfg = scenario_config(50, mobility="waypoint", max_speed=10.0,
                              seed=2, hop_latency=0.05)

        def run(net, rep_seed):
            membership = make_membership(net, "random")
            return run_scenario(
                net, RandomStrategy(membership),
                UniquePathStrategy(salvation=True),
                advertise_size=12, lookup_size=8,
                n_keys=4, n_lookups=20, seed=rep_seed)

        seq = run_replicated(cfg, run, reps=3, backend="sequential",
                             base_seed=2)
        bat = run_replicated(cfg, run, reps=3, backend="batched",
                             base_seed=2)
        _assert_replicas_identical(seq, bat)

    def test_identical_with_lossy_links(self):
        # drop_prob > 0 disables the bulk-forward fast path; results must
        # still match exactly (drops draw from the per-replica stream).
        cfg = scenario_config(50, seed=4, drop_prob=0.05)
        run = _random_run(qa=12, ql=9, n_lookups=25)
        seq = run_replicated(cfg, run, reps=3, backend="sequential",
                             base_seed=4)
        bat = run_replicated(cfg, run, reps=3, backend="batched",
                             base_seed=4)
        _assert_replicas_identical(seq, bat)

    def test_replicas_are_decorrelated(self):
        outcome = run_replicated(scenario_config(60, seed=3), _random_run(),
                                 reps=4, backend="batched", base_seed=3)
        totals = [s.lookup_messages_total for s in outcome.stats]
        assert len(set(totals)) > 1  # replicas vary — not clones

    def test_explicit_seed_list_round_trips(self):
        cfg = scenario_config(60, seed=3)
        run = _random_run()
        auto = run_replicated(cfg, run, reps=3, backend="batched",
                              base_seed=3)
        manual = run_replicated(cfg, run, reps=3, backend="batched",
                                base_seed=3, seeds=auto.seeds)
        _assert_replicas_identical(auto, manual)


class TestAggregation:
    def test_estimates_and_wilson(self):
        outcome = run_replicated(scenario_config(60, seed=3), _random_run(),
                                 reps=4, backend="batched", base_seed=3)
        est = outcome.estimates["hit_ratio"]
        assert est.reps == 4
        assert est.mean == pytest.approx(
            np.mean([s.hit_ratio for s in outcome.stats]))
        assert est.halfwidth > 0
        low, high = outcome.wilson
        assert 0.0 <= low <= high <= 1.0
        # ci_dict maps hit_ratio to the pooled Wilson half-width.
        assert outcome.ci_dict()["hit_ratio"] == pytest.approx(
            (high - low) / 2.0)
        merged = outcome.merged
        assert merged.lookups == sum(s.lookups for s in outcome.stats)

    def test_reps0_yields_nan_not_crash(self):
        # Empty-reps guard: zero replicas (or an all-faulted run) must
        # produce NaN rows, never a ZeroDivisionError.
        outcome = run_replicated(scenario_config(60, seed=3), _random_run(),
                                 reps=0, backend="batched", base_seed=3)
        assert outcome.reps == 0
        assert math.isnan(outcome.mean("hit_ratio"))
        assert math.isnan(outcome.halfwidth("hit_ratio"))
        assert math.isnan(outcome.wilson[0])
        assert outcome.ci_dict() == {}
        assert outcome.merged is None

    def test_summarize_empty_is_all_nan(self):
        estimates, wilson = summarize_replicas([])
        assert all(math.isnan(e.mean) for e in estimates.values())
        assert math.isnan(wilson[0]) and math.isnan(wilson[1])

    def test_on_error_skip_counts_faults(self):
        calls = []

        def flaky(net, rep_seed):
            calls.append(rep_seed)
            if len(calls) == 2:
                raise RuntimeError("replica fault")
            return ScenarioStats(n=10, lookups=10, hits=9)

        outcome = run_replicated(scenario_config(40, seed=1), flaky,
                                 reps=3, backend="sequential", base_seed=1,
                                 on_error="skip")
        assert outcome.faulted == 1
        assert outcome.reps == 2
        assert not math.isnan(outcome.mean("hit_ratio"))

    def test_on_error_raise_propagates(self):
        def boom(net, rep_seed):
            raise RuntimeError("replica fault")

        with pytest.raises(RuntimeError, match="replica fault"):
            run_replicated(scenario_config(40, seed=1), boom, reps=1,
                           backend="sequential", base_seed=1)

    def test_all_faulted_is_nan_not_crash(self):
        def boom(net, rep_seed):
            raise RuntimeError("fault")

        outcome = run_replicated(scenario_config(40, seed=1), boom, reps=3,
                                 backend="sequential", base_seed=1,
                                 on_error="skip")
        assert outcome.reps == 0 and outcome.faulted == 3
        assert math.isnan(outcome.mean("hit_ratio"))


class TestStoppingRule:
    def test_stops_once_target_met(self):
        outcome = run_replicated(
            scenario_config(50, seed=1), _random_run(qa=15, ql=12),
            reps=2, backend="batched", base_seed=1,
            target_halfwidth=0.5, max_reps=12)
        # A 0.5 half-width is trivially met by the mandatory replicas.
        assert outcome.reps == 2
        assert outcome.stopped_early
        assert outcome.halfwidth("hit_ratio") <= 0.5

    def test_extends_up_to_max_reps(self):
        outcome = run_replicated(
            scenario_config(50, seed=1), _random_run(qa=15, ql=12),
            reps=2, backend="batched", base_seed=1,
            target_halfwidth=1e-9, max_reps=5)
        # Unreachable target: runs the whole budget, never past it.
        assert outcome.reps == 5
        assert not outcome.stopped_early

    def test_budget_defaults_to_8x(self):
        plan = ReplicationPlan(reps=3, target_halfwidth=0.01)
        assert plan.replica_budget() == 24
        assert ReplicationPlan(reps=3).replica_budget() == 3

    def test_extension_preserves_mandatory_prefix(self):
        run = _random_run(qa=15, ql=12)
        base = run_replicated(scenario_config(50, seed=1), run, reps=2,
                              backend="batched", base_seed=1)
        extended = run_replicated(scenario_config(50, seed=1), run, reps=2,
                                  backend="batched", base_seed=1,
                                  target_halfwidth=1e-9, max_reps=4)
        for left, right in zip(base.stats, extended.stats[:2]):
            assert scenario_stats_equal(left, right)


class TestReplicaTracing:
    def test_trace_events_carry_replica_id(self):
        per_replica = {}

        def run(net, rep_seed):
            net.trace.enable(memory=True)
            stats = _random_run(n_keys=2, n_lookups=5)(net, rep_seed)
            replicas = {e.fields.get("replica") for e in net.trace.events()}
            per_replica[net.trace.context["replica"]] = replicas
            return stats

        run_replicated(scenario_config(40, seed=6), run, reps=3,
                       backend="batched", base_seed=6)
        assert set(per_replica) == {0, 1, 2}
        for index, replicas in per_replica.items():
            assert replicas == {index}


class TestPlanValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            run_replicated(scenario_config(40, seed=1), _random_run(),
                           reps=1, backend="gpu", base_seed=1)

    def test_negative_reps_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            run_replicated(scenario_config(40, seed=1), _random_run(),
                           reps=-1, base_seed=1)

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            run_replicated(scenario_config(40, seed=1), _random_run(),
                           reps=1, on_error="ignore", base_seed=1)

    def test_env_default_backend(self, monkeypatch):
        from repro.experiments import montecarlo

        monkeypatch.setenv("REPRO_REP_BACKEND", "sequential")
        assert montecarlo.default_backend() == "sequential"
        monkeypatch.setenv("REPRO_REP_BACKEND", "nonsense")
        assert montecarlo.default_backend() == "batched"
        monkeypatch.delenv("REPRO_REP_BACKEND")
        assert montecarlo.default_backend() == "batched"


class TestSweepDeterminism:
    def test_jobs_do_not_change_results(self):
        # The process pool must be a pure throughput knob: per-point
        # results (including replicated ones) are identical at any jobs.
        from repro.experiments.fig8_random import random_lookup_hit_ratio

        serial = random_lookup_hit_ratio(
            sizes=(40,), lookup_factors=(0.5, 1.0), n_keys=3, n_lookups=10,
            jobs=1, reps=2)
        pooled = random_lookup_hit_ratio(
            sizes=(40,), lookup_factors=(0.5, 1.0), n_keys=3, n_lookups=10,
            jobs=4, reps=2)
        assert serial == pooled

    def test_backend_does_not_change_figure_points(self):
        from repro.experiments.fig8_random import random_lookup_hit_ratio

        batched = random_lookup_hit_ratio(
            sizes=(40,), lookup_factors=(1.0,), n_keys=3, n_lookups=10,
            jobs=1, reps=3, rep_backend="batched")
        sequential = random_lookup_hit_ratio(
            sizes=(40,), lookup_factors=(1.0,), n_keys=3, n_lookups=10,
            jobs=1, reps=3, rep_backend="sequential")
        assert batched == sequential
