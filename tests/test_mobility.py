"""Tests for mobility models and the mobility manager."""

import math
import random

import pytest

from repro.mobility import (
    FixedPlacement,
    Leg,
    MobilityManager,
    RandomWaypoint,
    StaticPlacement,
    average_nodal_speed,
)


class TestLeg:
    def test_interpolates_linearly(self):
        leg = Leg(t0=0.0, p0=(0.0, 0.0), t1=10.0, p1=(10.0, 0.0))
        assert leg.position_at(5.0) == (5.0, 0.0)

    def test_clamps_before_start(self):
        leg = Leg(t0=2.0, p0=(1.0, 1.0), t1=4.0, p1=(3.0, 3.0))
        assert leg.position_at(0.0) == (1.0, 1.0)

    def test_clamps_after_end(self):
        leg = Leg(t0=2.0, p0=(1.0, 1.0), t1=4.0, p1=(3.0, 3.0))
        assert leg.position_at(10.0) == (3.0, 3.0)

    def test_pause_leg_constant(self):
        leg = Leg(t0=0.0, p0=(2.0, 2.0), t1=5.0, p1=(2.0, 2.0))
        assert leg.position_at(2.5) == (2.0, 2.0)

    def test_infinite_leg(self):
        leg = Leg(t0=0.0, p0=(1.0, 1.0), t1=math.inf, p1=(1.0, 1.0))
        assert leg.position_at(1e9) == (1.0, 1.0)


class TestStaticPlacement:
    def test_positions_in_bounds(self):
        model = StaticPlacement(side=50.0, rng=random.Random(0))
        for nid in range(20):
            x, y = model.initial_position(nid)
            assert 0 <= x <= 50 and 0 <= y <= 50

    def test_nodes_never_move(self):
        model = StaticPlacement(side=50.0, rng=random.Random(0))
        mgr = MobilityManager(model)
        p0 = mgr.add_node(0)
        assert mgr.position_at(0, 1e6) == p0

    def test_invalid_side(self):
        with pytest.raises(ValueError):
            StaticPlacement(side=0.0)


class TestFixedPlacement:
    def test_uses_given_positions(self):
        model = FixedPlacement([(1.0, 2.0), (3.0, 4.0)])
        assert model.initial_position(1) == (3.0, 4.0)


class TestRandomWaypoint:
    def make(self, **kw):
        defaults = dict(side=100.0, min_speed=1.0, max_speed=2.0,
                        pause_time=5.0, rng=random.Random(3))
        defaults.update(kw)
        return RandomWaypoint(**defaults)

    def test_stays_in_bounds(self):
        mgr = MobilityManager(self.make())
        mgr.add_node(0)
        for t in range(0, 500, 7):
            x, y = mgr.position_at(0, float(t))
            assert -1e-9 <= x <= 100 + 1e-9
            assert -1e-9 <= y <= 100 + 1e-9

    def test_node_actually_moves(self):
        mgr = MobilityManager(self.make(pause_time=0.0))
        p0 = mgr.add_node(0)
        p1 = mgr.position_at(0, 200.0)
        assert p0 != p1

    def test_speed_respected_on_first_leg(self):
        model = self.make(pause_time=0.0)
        mgr = MobilityManager(model)
        p0 = mgr.add_node(0, t=0.0)
        dt = 0.5
        p1 = mgr.position_at(0, dt)
        dist = math.hypot(p1[0] - p0[0], p1[1] - p0[1])
        assert dist <= model.max_speed * dt + 1e-9

    def test_pause_alternates(self):
        model = self.make(pause_time=1000.0)
        mgr = MobilityManager(model)
        mgr.add_node(0, t=0.0)
        # After the first (move) leg completes, a long pause follows:
        p_mid = mgr.position_at(0, 300.0)
        p_later = mgr.position_at(0, 400.0)
        # During a 1000 s pause positions should match at some window.
        assert p_mid == p_later or p_mid != p_later  # smoke: no crash
        # Stronger: directly request legs.
        leg1 = model.next_leg(1, 0.0, (5.0, 5.0))
        leg2 = model.next_leg(1, leg1.t1, leg1.p1)
        assert leg2.p0 == leg2.p1  # pause leg
        assert leg2.t1 - leg2.t0 == 1000.0

    def test_invalid_speeds(self):
        with pytest.raises(ValueError):
            self.make(min_speed=0.0)
        with pytest.raises(ValueError):
            self.make(min_speed=3.0, max_speed=2.0)

    def test_invalid_pause(self):
        with pytest.raises(ValueError):
            self.make(pause_time=-1.0)

    def test_average_speed_in_range(self):
        model = self.make()
        avg = average_nodal_speed(model, samples=2000)
        assert 1.0 < avg < 2.0


class TestMobilityManager:
    def test_add_remove(self):
        mgr = MobilityManager(StaticPlacement(10.0, rng=random.Random(0)))
        mgr.add_node(1)
        assert 1 in mgr
        mgr.remove_node(1)
        assert 1 not in mgr

    def test_explicit_position(self):
        mgr = MobilityManager(StaticPlacement(10.0, rng=random.Random(0)))
        mgr.add_node(0, position=(3.0, 4.0))
        assert mgr.position_at(0, 0.0) == (3.0, 4.0)

    def test_snapshot_covers_all(self):
        mgr = MobilityManager(StaticPlacement(10.0, rng=random.Random(0)))
        for i in range(5):
            mgr.add_node(i)
        snap = mgr.snapshot(0.0)
        assert sorted(snap) == list(range(5))

    def test_queries_are_monotone_consistent(self):
        model = RandomWaypoint(side=100.0, min_speed=1.0, max_speed=1.0,
                               pause_time=0.0, rng=random.Random(1))
        mgr = MobilityManager(model)
        mgr.add_node(0, t=0.0)
        a = mgr.position_at(0, 10.0)
        b = mgr.position_at(0, 10.0)
        assert a == b

    def test_node_ids(self):
        mgr = MobilityManager(StaticPlacement(10.0, rng=random.Random(0)))
        mgr.add_node(3)
        mgr.add_node(7)
        assert sorted(mgr.node_ids()) == [3, 7]
