"""Equivalence and regression suite for the performance subsystem.

The vectorized numpy kernel must be an *exact* drop-in for the pure-Python
reference path: identical neighbor tables (not just statistically similar)
on random deployments — static and waypoint, torus on and off, with churn —
and the parallel sweep runner must be bit-identical to sequential runs.
"""

import copy
import math

import pytest

from repro.experiments import merge_scenario_stats, run_sweep
from repro.experiments.common import (
    make_membership,
    make_network,
    run_scenario,
)
from repro.geometry.kernel import NeighborKernel
from repro.simnet.churn import apply_churn
from repro.simnet.network import FloodOutcome, NetworkConfig, SimNetwork


def make_pair(**kw):
    """The same deployment under both backends."""
    base = dict(n=60, avg_degree=10, seed=3, require_connected=False)
    base.update(kw)
    py = SimNetwork(NetworkConfig(neighbor_backend="python", **base))
    vec = SimNetwork(NetworkConfig(neighbor_backend="vectorized", **base))
    return py, vec


def tables_of(net):
    return {v: net.true_neighbors(v) for v in net.alive_nodes()}


class TestKernelPrimitive:
    def brute(self, positions, side, r, torus):
        out = {}
        for i, a in positions.items():
            nbrs = []
            for j, b in positions.items():
                if i == j:
                    continue
                dx, dy = abs(a[0] - b[0]), abs(a[1] - b[1])
                if torus:
                    dx, dy = min(dx, side - dx), min(dy, side - dy)
                if math.hypot(dx, dy) <= r:
                    nbrs.append(j)
            out[i] = sorted(nbrs)
        return out

    @pytest.mark.parametrize("torus", [False, True])
    @pytest.mark.parametrize("n,side,r", [(0, 100.0, 30.0), (1, 100.0, 30.0),
                                          (50, 300.0, 75.0), (120, 500.0, 490.0)])
    def test_matches_brute_force(self, n, side, r, torus):
        import random
        rng = random.Random(n * 7 + int(torus))
        kernel = NeighborKernel(side, r, torus=torus)
        positions = {}
        for i in range(n):
            positions[i] = (rng.uniform(0, side), rng.uniform(0, side))
            kernel.insert(i, positions[i])
        assert kernel.neighbor_tables() == self.brute(positions, side, r, torus)

    def test_incremental_remove_insert(self):
        import random
        rng = random.Random(9)
        side, r = 400.0, 90.0
        kernel = NeighborKernel(side, r)
        positions = {}
        for i in range(80):
            positions[i] = (rng.uniform(0, side), rng.uniform(0, side))
            kernel.insert(i, positions[i])
        for victim in (5, 17, 79, 0):
            kernel.remove(victim)
            del positions[victim]
        for i in (200, 201):
            positions[i] = (rng.uniform(0, side), rng.uniform(0, side))
            kernel.insert(i, positions[i])
        assert len(kernel) == len(positions)
        assert kernel.neighbor_tables() == self.brute(positions, side, r, False)

    def test_radius_guard(self):
        kernel = NeighborKernel(1000.0, 100.0)
        kernel.insert(0, (1.0, 1.0))
        kernel.insert(1, (2.0, 2.0))
        with pytest.raises(ValueError):
            kernel.neighbor_tables(radius=500.0)


class TestBackendEquivalence:
    @pytest.mark.parametrize("torus", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_static_deployments(self, seed, torus):
        py, vec = make_pair(seed=seed, torus=torus)
        assert tables_of(py) == tables_of(vec)

    @pytest.mark.parametrize("torus", [False, True])
    def test_waypoint_over_time(self, torus):
        py, vec = make_pair(mobility="waypoint", max_speed=15.0, seed=5,
                            torus=torus)
        for dt in (0.4, 3.0, 7.1, 12.0):
            py.advance(dt)
            vec.advance(dt)
            assert tables_of(py) == tables_of(vec)
            assert {v: py.known_neighbors(v) for v in py.alive_nodes()} == \
                   {v: vec.known_neighbors(v) for v in vec.alive_nodes()}

    def test_under_churn(self):
        py, vec = make_pair(seed=7)
        for victim in (3, 31, 55):
            py.fail_node(victim)
            vec.fail_node(victim)
            assert tables_of(py) == tables_of(vec)
        for _ in range(3):
            a = py.join_node()
            b = vec.join_node()
            assert a == b
            assert tables_of(py) == tables_of(vec)
        # Dead node as the query origin: both answer from its last position.
        assert py.true_neighbors(3) == vec.true_neighbors(3)

    def test_interleaved_fail_revive_join(self):
        # Revival must restore the exact same incremental state on both
        # backends, including a node that dies and comes back between
        # joins and other failures.
        py, vec = make_pair(seed=17)
        script = [("fail", 4), ("fail", 22), ("revive", 4), ("join", None),
                  ("fail", 40), ("revive", 22), ("join", None), ("fail", 4),
                  ("revive", 40), ("revive", 4)]
        for op, node in script:
            for net in (py, vec):
                if op == "fail":
                    net.fail_node(node)
                elif op == "revive":
                    net.revive_node(node)
                else:
                    net.join_node()
            assert py.alive_nodes() == vec.alive_nodes()
            assert tables_of(py) == tables_of(vec)
        # Final state equals a fresh python network replaying the script.
        fresh = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=17,
                                         require_connected=False,
                                         neighbor_backend="python"))
        for op, node in script:
            if op == "fail":
                fresh.fail_node(node)
            elif op == "revive":
                fresh.revive_node(node)
            else:
                fresh.join_node()
        assert tables_of(vec) == tables_of(fresh)

    def test_revive_restores_tables_exactly(self):
        py, vec = make_pair(seed=19)
        before_py, before_vec = tables_of(py), tables_of(vec)
        for victim in (7, 33):
            py.fail_node(victim)
            vec.fail_node(victim)
        for victim in (33, 7):
            py.revive_node(victim)
            vec.revive_node(victim)
        assert tables_of(py) == before_py
        assert tables_of(vec) == before_vec

    def test_tentative_fail_and_rollback_keep_parity(self):
        py, vec = make_pair(seed=23)
        for net in (py, vec):
            net.fail_node(9, commit=False)
        assert tables_of(py) == tables_of(vec)
        for net in (py, vec):
            net.revive_node(9)  # silent rollback
        assert tables_of(py) == tables_of(vec)
        assert py.is_alive(9) and vec.is_alive(9)

    def test_waypoint_churn_mix(self):
        py, vec = make_pair(mobility="waypoint", max_speed=10.0, seed=11)
        py.advance(2.5)
        vec.advance(2.5)
        py.fail_node(10)
        vec.fail_node(10)
        assert tables_of(py) == tables_of(vec)
        py.advance(4.0)
        vec.advance(4.0)
        py.join_node()
        vec.join_node()
        assert tables_of(py) == tables_of(vec)

    def test_connectivity_and_snapshot_agree(self):
        py, vec = make_pair(seed=2)
        assert py.is_connected() == vec.is_connected()
        gp, gv = py.snapshot_graph(), vec.snapshot_graph()
        assert gp.positions == gv.positions
        assert [sorted(a) for a in gp.adjacency] == \
               [sorted(a) for a in gv.adjacency]

    def test_apply_churn_same_outcome(self):
        import random
        py, vec = make_pair(seed=13, n=50)
        out_py = apply_churn(py, fail_fraction=0.2, join_fraction=0.1,
                             rng=random.Random(4), keep_connected=True)
        out_vec = apply_churn(vec, fail_fraction=0.2, join_fraction=0.1,
                              rng=random.Random(4), keep_connected=True)
        assert out_py.failed == out_vec.failed
        assert out_py.joined == out_vec.joined
        assert tables_of(py) == tables_of(vec)

    def test_full_scenario_identical_stats(self):
        from repro.core.strategies import RandomStrategy

        results = []
        for backend in ("python", "vectorized"):
            net = SimNetwork(NetworkConfig(n=80, avg_degree=10, seed=1,
                                           neighbor_backend=backend))
            membership = make_membership(net, "random")
            strategy = RandomStrategy(membership)
            results.append(run_scenario(
                net, advertise_strategy=strategy, lookup_strategy=strategy,
                advertise_size=12, lookup_size=10, n_keys=5, n_lookups=25,
                seed=2))
        assert results[0] == results[1]


def _scenario_point(n, seed):
    from repro.core.strategies import RandomStrategy

    net = make_network(n, seed=seed % 1000)
    membership = make_membership(net, "random")
    strategy = RandomStrategy(membership)
    return run_scenario(net, strategy, strategy, advertise_size=10,
                        lookup_size=10, n_keys=4, n_lookups=12,
                        seed=seed % 997)


class TestSweepRunner:
    def test_parallel_identical_to_sequential(self):
        seq = run_sweep([50, 70], _scenario_point, replications=2, jobs=1,
                        base_seed=5)
        par = run_sweep([50, 70], _scenario_point, replications=2, jobs=3,
                        base_seed=5)
        assert [r.point for r in seq] == [r.point for r in par]
        assert [r.results for r in seq] == [r.results for r in par]

    def test_seed_derivation_is_positional(self):
        from repro.experiments.runner import derive_task_seed

        seeds = {derive_task_seed(0, i, r) for i in range(4) for r in range(4)}
        assert len(seeds) == 16  # all distinct
        assert derive_task_seed(0, 1, 2) == derive_task_seed(0, 1, 2)

    def test_merge_weights_by_operations(self):
        stats = run_sweep([60], _scenario_point, replications=3,
                          base_seed=9)[0].results
        merged = merge_scenario_stats(stats)
        assert merged.lookups == sum(s.lookups for s in stats)
        assert merged.hits == sum(s.hits for s in stats)
        assert merged.hit_ratio == pytest.approx(
            sum(s.hits for s in stats)
            / sum(s.lookups_present for s in stats))
        # Merging must not mutate its inputs.
        again = merge_scenario_stats(stats)
        assert again == merged

    def test_single_stats_merge_is_identity(self):
        stats = _scenario_point(50, 3)
        assert merge_scenario_stats([copy.deepcopy(stats)]) == stats


class TestReversePathGuard:
    def test_valid_tree(self):
        out = FloodOutcome(origin=0, ttl=2,
                           covered={0: 0, 1: 1, 2: 2},
                           parent={0: 0, 1: 0, 2: 1})
        assert out.reverse_path(2) == [2, 1, 0]

    def test_cycle_raises(self):
        out = FloodOutcome(origin=0, ttl=2,
                           covered={0: 0, 1: 1, 2: 2},
                           parent={0: 0, 1: 2, 2: 1})
        with pytest.raises(ValueError, match="cyclic"):
            out.reverse_path(2)

    def test_broken_chain_raises(self):
        out = FloodOutcome(origin=0, ttl=2,
                           covered={0: 0, 1: 1, 2: 2, 3: 3},
                           parent={0: 0, 2: 3})
        with pytest.raises(ValueError, match="broken"):
            out.reverse_path(2)

    def test_real_flood_paths_still_work(self):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=4))
        outcome = net.flood(0, ttl=3)
        for node in outcome.covered:
            path = outcome.reverse_path(node)
            assert path[0] == node and path[-1] == 0
            assert len(path) == outcome.covered[node] + 1


class TestIncrementalChurn:
    def test_static_python_backend_no_grid_rebuild(self):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=6,
                                       neighbor_backend="python"))
        net.true_neighbors(0)
        grid_before = net._grid
        assert grid_before is not None
        victim = net.alive_nodes()[-1]
        net.fail_node(victim)
        net.true_neighbors(0)
        joined = net.join_node()
        net.true_neighbors(joined)
        assert net._grid is grid_before  # patched in place, never rebuilt
        assert victim not in net._grid
        assert joined in net._grid

    def test_static_vectorized_no_table_rebuild(self, monkeypatch):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=6,
                                       neighbor_backend="vectorized"))
        net.true_neighbors(0)
        tables_before = net._tables
        kernel_before = net._kernel
        assert tables_before is not None

        def boom(self, radius=None):  # a full pass would mean a rebuild
            raise AssertionError("full neighbor_tables rebuild on churn")

        monkeypatch.setattr(NeighborKernel, "neighbor_tables", boom)
        victim = net.alive_nodes()[-1]
        net.fail_node(victim)
        assert net.true_neighbors(victim) is not None
        joined = net.join_node()
        assert net._tables is tables_before
        assert net._kernel is kernel_before
        assert victim not in net._tables
        assert all(victim not in nbrs for nbrs in net._tables.values())
        assert joined in net._tables
        for other in net._tables[joined]:
            assert joined in net._tables[other]

    def test_churned_tables_match_fresh_network(self):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=8,
                                       neighbor_backend="vectorized"))
        net.true_neighbors(0)  # build tables, then churn incrementally
        for victim in (2, 11, 29):
            net.fail_node(victim)
        fresh = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=8,
                                         neighbor_backend="python"))
        for victim in (2, 11, 29):
            fresh.fail_node(victim)
        assert tables_of(net) == tables_of(fresh)


class TestBatchedReplicaTables:
    def _random_positions(self, rng, n, side):
        return [(rng.uniform(0, side), rng.uniform(0, side))
                for _ in range(n)]

    def test_matches_solo_kernel_per_replica(self):
        import random as _random

        from repro.geometry.kernel import batched_neighbor_tables

        side, radius, n, reps = 1000.0, 180.0, 40, 5
        rng = _random.Random(11)
        ids = list(range(n))
        stacks = [self._random_positions(rng, n, side) for _ in range(reps)]
        batched = batched_neighbor_tables(ids, stacks, side=side,
                                          radius=radius)
        assert len(batched) == reps
        for positions, tables in zip(stacks, batched):
            kernel = NeighborKernel(side=side, radius=radius)
            kernel.rebuild(ids, positions)
            assert tables == kernel.neighbor_tables()

    def test_torus_wraparound_matches_solo(self):
        import random as _random

        from repro.geometry.kernel import batched_neighbor_tables

        side, radius, n = 500.0, 170.0, 25
        rng = _random.Random(3)
        ids = list(range(n))
        stacks = [self._random_positions(rng, n, side) for _ in range(3)]
        batched = batched_neighbor_tables(ids, stacks, side=side,
                                          radius=radius, torus=True)
        for positions, tables in zip(stacks, batched):
            kernel = NeighborKernel(side=side, radius=radius, torus=True)
            kernel.rebuild(ids, positions)
            assert tables == kernel.neighbor_tables()

    def test_replicas_stay_isolated(self):
        # Two replicas, same ids, positions arranged so that cross-replica
        # pairs would be neighbors if the batch pass leaked between them.
        from repro.geometry.kernel import batched_neighbor_tables

        ids = [0, 1]
        rep_a = [(10.0, 10.0), (900.0, 900.0)]   # far apart: no edge
        rep_b = [(12.0, 12.0), (13.0, 13.0)]     # co-located: edge
        tables = batched_neighbor_tables(ids, [rep_a, rep_b],
                                         side=1000.0, radius=50.0)
        assert tables[0] == {0: [], 1: []}
        assert tables[1] == {0: [1], 1: [0]}

    def test_single_deployment_matrix_accepted(self):
        import random as _random

        from repro.geometry.kernel import batched_neighbor_tables

        rng = _random.Random(9)
        ids = list(range(20))
        positions = self._random_positions(rng, 20, 600.0)
        tables = batched_neighbor_tables(ids, positions, side=600.0,
                                         radius=150.0)
        kernel = NeighborKernel(side=600.0, radius=150.0)
        kernel.rebuild(ids, positions)
        assert tables == [kernel.neighbor_tables()]

    def test_degenerate_sizes(self):
        import numpy as np

        from repro.geometry.kernel import batched_neighbor_tables

        assert batched_neighbor_tables([], np.zeros((2, 0, 2)), side=100.0,
                                       radius=10.0) == [{}, {}]
        assert batched_neighbor_tables([7], [[(5.0, 5.0)], [(6.0, 6.0)]],
                                       side=100.0, radius=10.0) == [
            {7: []}, {7: []}]

    def test_radius_beyond_cell_size_rejected(self):
        from repro.geometry.kernel import batched_neighbor_tables

        with pytest.raises(ValueError):
            batched_neighbor_tables([0], [[(1.0, 1.0)]], side=100.0,
                                    radius=200.0)
