"""Tests for membership services and the continuous churn process."""

import random

import pytest

from repro.membership import FullMembership, RandomMembership, uniform_sample
from repro.simnet import ChurnProcess, NetworkConfig, SimNetwork


def make_net(n=60, seed=0):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed))


class TestFullMembership:
    def test_view_covers_all_alive(self):
        net = make_net()
        m = FullMembership(net)
        assert m.view() == net.alive_nodes()

    def test_view_stale_until_refresh(self):
        net = make_net()
        m = FullMembership(net)
        net.fail_node(3)
        assert 3 in m.view()
        m.refresh()
        assert 3 not in m.view()

    def test_periodic_refresh(self):
        net = make_net()
        m = FullMembership(net, refresh_interval=5.0)
        net.fail_node(3)
        net.advance(6.0)
        assert 3 not in m.view()

    def test_sample_distinct(self):
        net = make_net()
        m = FullMembership(net)
        s = m.sample(10, random.Random(0))
        assert len(set(s)) == 10

    def test_sample_excludes(self):
        net = make_net()
        m = FullMembership(net)
        for _ in range(20):
            assert 5 not in m.sample(10, random.Random(0), exclude=5)

    def test_sample_for_excludes_self(self):
        net = make_net()
        m = FullMembership(net)
        assert 7 not in m.sample_for(7, 59, random.Random(1))

    def test_sample_larger_than_pool(self):
        net = make_net(n=50)
        m = FullMembership(net)
        s = m.sample(100, random.Random(0))
        assert len(s) == 50

    def test_stop_halts_timer(self):
        net = make_net()
        m = FullMembership(net, refresh_interval=5.0)
        m.stop()
        net.fail_node(3)
        net.advance(20.0)
        assert 3 in m.view()


class TestRandomMembership:
    def test_default_view_size_is_2_sqrt_n(self):
        net = make_net(n=100)
        m = RandomMembership(net)
        assert m.view_size == 20
        assert len(m.view(0)) == 20

    def test_view_excludes_self(self):
        net = make_net()
        m = RandomMembership(net)
        for node in (0, 10, 30):
            assert node not in m.view(node)

    def test_views_differ_across_nodes(self):
        net = make_net(n=100)
        m = RandomMembership(net)
        assert any(set(m.view(i)) != set(m.view(j))
                   for i in range(5) for j in range(5, 10))

    def test_views_approximately_uniform(self):
        net = make_net(n=100, seed=3)
        m = RandomMembership(net)
        counts = {}
        for node in net.alive_nodes():
            for member in m.view(node):
                counts[member] = counts.get(member, 0) + 1
        # Every node should appear in some views; none wildly dominant.
        assert len(counts) >= 95
        assert max(counts.values()) <= 6 * (sum(counts.values()) / len(counts))

    def test_late_joiner_bootstraps_view(self):
        net = make_net()
        m = RandomMembership(net)
        new = net.join_node()
        assert len(m.view(new)) > 0

    def test_explicit_view_size(self):
        net = make_net()
        m = RandomMembership(net, view_size=5)
        assert len(m.view(0)) == 5

    def test_sample_for_within_view(self):
        net = make_net()
        m = RandomMembership(net)
        sample = m.sample_for(0, 5, random.Random(0))
        assert set(sample) <= set(m.view(0))

    def test_refresh_redraws_views(self):
        net = make_net(n=100)
        m = RandomMembership(net)
        before = list(m.view(0))
        m.refresh()
        # Overwhelmingly likely to change for a 20-of-99 draw.
        assert m.view(0) != before or len(before) == 99


class TestUniformSample:
    def test_distinct_and_subset(self):
        s = uniform_sample(list(range(50)), 10, random.Random(0))
        assert len(set(s)) == 10
        assert set(s) <= set(range(50))

    def test_whole_universe_when_k_large(self):
        assert sorted(uniform_sample([1, 2, 3], 10, random.Random(0))) == [1, 2, 3]


class TestChurnProcess:
    def test_failures_accumulate(self):
        net = make_net(n=80, seed=1)
        proc = ChurnProcess(net, failure_rate=1.0, rng=random.Random(0))
        net.advance(30.0)
        assert proc.failures > 10
        assert net.n_alive == 80 - proc.failures

    def test_joins_accumulate(self):
        net = make_net(n=40, seed=1)
        proc = ChurnProcess(net, join_rate=0.5, rng=random.Random(0))
        net.advance(30.0)
        assert proc.joins > 5
        assert net.n_alive == 40 + proc.joins

    def test_stop_halts_churn(self):
        net = make_net(n=80, seed=1)
        proc = ChurnProcess(net, failure_rate=1.0, rng=random.Random(0))
        net.advance(5.0)
        count = proc.failures
        proc.stop()
        net.advance(30.0)
        assert proc.failures == count

    def test_protected_nodes_survive(self):
        net = make_net(n=40, seed=2)
        ChurnProcess(net, failure_rate=2.0, rng=random.Random(0),
                     protected={0})
        net.advance(15.0)
        assert net.is_alive(0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            ChurnProcess(make_net(), failure_rate=-1.0)
