"""Tests for the open-loop kv workload engine and its batched kernel.

Determinism is the headline: the op stream is a pure function of the
spec, sweeps are bit-identical across worker counts, and the batched
kernel reproduces itself exactly.  Distributional checks (Zipf fit,
stale-rate vs the lease analysis) and the fault-campaign consistency
sweep ride along.
"""

import math

import numpy as np
import pytest

from repro.experiments import (
    KVPointConfig,
    WorkloadSpec,
    evaluate_kv_point,
    generate_operations,
    kv_sweep,
    run_workload_batched,
    run_workload_sequential,
    zipf_pmf,
)
from repro.experiments.fig_kv import KVSweepPoint
from repro.experiments.workload import OP_CAS, OP_GET, OP_PUT
from repro.faults import BUILTIN_CAMPAIGNS, run_kv_fault_campaign


class TestGenerator:
    def test_same_spec_same_stream(self):
        spec = WorkloadSpec(ops=5_000, seed=13)
        a, b = generate_operations(spec), generate_operations(spec)
        for name in ("times", "keys", "kinds", "origins"):
            assert np.array_equal(getattr(a, name), getattr(b, name))

    def test_seed_changes_stream(self):
        a = generate_operations(WorkloadSpec(ops=1_000, seed=1))
        b = generate_operations(WorkloadSpec(ops=1_000, seed=2))
        assert not np.array_equal(a.keys, b.keys)

    def test_open_loop_rate(self):
        spec = WorkloadSpec(ops=20_000, arrival_rate=500.0, seed=3)
        ops = generate_operations(spec)
        assert np.all(np.diff(ops.times) >= 0)
        observed = spec.ops / float(ops.times[-1])
        assert observed == pytest.approx(500.0, rel=0.05)

    def test_mix_fractions(self):
        spec = WorkloadSpec(ops=50_000, read_fraction=0.7,
                            cas_fraction=0.2, seed=4)
        kinds = generate_operations(spec).kinds
        reads = np.mean(kinds == OP_GET)
        cas = np.mean(kinds == OP_CAS)
        assert reads == pytest.approx(0.7, abs=0.02)
        assert cas == pytest.approx(0.3 * 0.2, abs=0.01)
        assert np.mean(kinds == OP_PUT) == pytest.approx(
            0.3 * 0.8, abs=0.02)

    def test_zipf_chi_square(self):
        spec = WorkloadSpec(ops=200_000, n_keys=32, zipf_s=0.99, seed=5)
        keys = generate_operations(spec).keys
        counts = np.bincount(keys, minlength=spec.n_keys)
        expected = zipf_pmf(spec.n_keys, spec.zipf_s) * spec.ops
        chi2 = float(np.sum((counts - expected) ** 2 / expected))
        # 31 degrees of freedom: mean 31, sd sqrt(62); 5 sigma ~ 70.
        assert chi2 < 31 + 5 * math.sqrt(62)

    def test_zipf_pmf_normalized_and_skewed(self):
        pmf = zipf_pmf(64, 0.99)
        assert float(pmf.sum()) == pytest.approx(1.0)
        assert np.all(np.diff(pmf) < 0)


class TestBatchedKernel:
    def test_bit_reproducible(self):
        spec = WorkloadSpec(ops=20_000, seed=11, cas_fraction=0.05)
        config = KVPointConfig(n=300, churn_rate=0.01, lease_ttl=20.0)
        a = run_workload_batched(spec, config)
        b = run_workload_batched(spec, config)
        assert (a.stale_or_missed, a.found_reads, a.cas_successes,
                a.p50, a.p99, a.p999) == \
               (b.stale_or_missed, b.found_reads, b.cas_successes,
                b.p50, b.p99, b.p999)
        assert a.predicted_stale == b.predicted_stale

    def test_checker_clean(self):
        spec = WorkloadSpec(ops=50_000, seed=9, cas_fraction=0.1)
        config = KVPointConfig(n=400, churn_rate=0.02, lease_ttl=15.0)
        stats = run_workload_batched(spec, config)
        assert stats.report.clean
        assert stats.report.reads == stats.reads

    def test_stale_rate_tracks_lease_analysis(self):
        spec = WorkloadSpec(ops=200_000, seed=17, read_fraction=0.9)
        config = KVPointConfig(n=400, churn_rate=0.01, lease_ttl=30.0)
        stats = run_workload_batched(spec, config)
        assert math.isfinite(stats.predicted_stale)
        # Binomial sampling noise at ~180k reads is ~1e-3; allow 4x.
        hw = 4.0 * math.sqrt(stats.predicted_stale
                             * (1 - stats.predicted_stale)
                             / stats.eligible_reads)
        assert abs(stats.stale_fraction
                   - stats.predicted_stale) < hw + 1e-3

    def test_longer_lease_fewer_stale(self):
        spec = WorkloadSpec(ops=60_000, seed=21)
        short = run_workload_batched(
            spec, KVPointConfig(n=400, churn_rate=0.02, lease_ttl=5.0))
        long = run_workload_batched(
            spec, KVPointConfig(n=400, churn_rate=0.02, lease_ttl=60.0))
        assert long.stale_fraction < short.stale_fraction

    def test_no_churn_reduces_to_lemma_52(self):
        # Without churn every holder survives, so the only staleness
        # left is probabilistic quorum non-intersection: the predicted
        # rate must equal the plain hypergeometric miss of Lemma 5.2.
        from repro.analysis import miss_probability_exact
        spec = WorkloadSpec(ops=30_000, seed=23)
        config = KVPointConfig(n=400, churn_rate=0.0, lease_ttl=1e9)
        stats = run_workload_batched(spec, config)
        qa, ql = config.sizes()
        assert stats.predicted_stale == pytest.approx(
            miss_probability_exact(qa, ql, 400))
        assert stats.stale_fraction == pytest.approx(
            stats.predicted_stale, abs=5e-3)

    def test_full_quorums_never_stale(self):
        spec = WorkloadSpec(ops=10_000, seed=23)
        stats = run_workload_batched(
            spec, KVPointConfig(n=120, quorum_a=120, quorum_l=120,
                                churn_rate=0.0, lease_ttl=1e9))
        assert stats.stale_or_missed == 0
        assert stats.availability == 1.0


class TestBackendParity:
    def test_same_op_stream_both_backends(self):
        # Both backends replay generate_operations(spec) verbatim, so
        # the op mix must agree exactly however the ops are executed.
        spec = WorkloadSpec(ops=300, n_keys=8, seed=31, cas_fraction=0.1,
                            arrival_rate=20.0)
        batched = run_workload_batched(
            spec, KVPointConfig(n=120, lease_ttl=50.0))
        point = KVSweepPoint(backend="sequential", strategy="random",
                             ttl=50.0, rate=20.0, ops=300, n=120,
                             n_keys=8, read_fraction=spec.read_fraction,
                             cas_fraction=0.1, zipf_s=spec.zipf_s,
                             churn_rate=0.0, epsilon=0.05,
                             min_survival=0.9)
        sequential = evaluate_kv_point(point, seed=spec.seed)
        assert sequential.ops == batched.ops == 300
        assert sequential.reads == batched.reads
        assert sequential.writes == batched.writes
        assert sequential.cas_attempts == batched.cas_attempts

    def test_sequential_checker_clean(self):
        point = KVSweepPoint(backend="sequential", strategy="random",
                             ttl=40.0, rate=20.0, ops=200, n=100,
                             n_keys=8, read_fraction=0.8,
                             cas_fraction=0.1, zipf_s=0.99,
                             churn_rate=0.0, epsilon=0.05,
                             min_survival=0.9)
        stats = evaluate_kv_point(point, seed=3)
        assert stats.report.clean


class TestSweepDeterminism:
    @staticmethod
    def _sweep(jobs):
        return kv_sweep(backend="batched", ttls=(10.0, 40.0),
                        rates=(2000.0,), ops=20_000, n=300, n_keys=32,
                        churn_rate=0.01, reps=2, jobs=jobs, seed=7)

    def test_jobs_do_not_change_results(self):
        one = self._sweep(jobs=1)
        four = self._sweep(jobs=4)
        assert len(one) == len(four) == 2
        for a, b in zip(one, four):
            assert a.point == b.point
            assert (a.stale, a.stale_hw, a.predicted, a.p50, a.p99,
                    a.availability) == \
                   (b.stale, b.stale_hw, b.predicted, b.p50, b.p99,
                    b.availability)
            assert a.violations == b.violations == 0


class TestFaultCampaigns:
    @pytest.mark.parametrize("name", sorted(BUILTIN_CAMPAIGNS))
    def test_checker_clean_under_campaign(self, name):
        rep = run_kv_fault_campaign(campaign=name, n=60, n_ops=80,
                                    n_keys=6, seed=11)
        assert rep.clean, rep.consistency.lines()
        assert rep.stats.ops == 80

    def test_adaptive_ttl_responds_to_campaign_churn(self):
        quiet = run_kv_fault_campaign(campaign="smoke", n=60, n_ops=40,
                                      seed=5)
        stormy = run_kv_fault_campaign(campaign="stress", n=60, n_ops=40,
                                       seed=5)
        assert stormy.lease_ttl < quiet.lease_ttl

    def test_report_lines_render(self):
        rep = run_kv_fault_campaign(campaign="smoke", n=60, n_ops=40,
                                    seed=5, watch=True)
        text = "\n".join(rep.lines())
        assert "kv workload" in text and "leases" in text
        assert rep.watch_clean is True
