"""Tests for the graph-level (protocol-model) network simulator."""

import random

import pytest

from repro.simnet import NetworkConfig, SimNetwork, apply_churn


def net_static(n=80, seed=0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


def net_mobile(n=80, seed=0, max_speed=2.0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed,
                                    mobility="waypoint",
                                    max_speed=max_speed, **kw))


class TestDeployment:
    def test_all_nodes_alive(self):
        net = net_static()
        assert net.n_alive == 80
        assert net.alive_nodes() == list(range(80))

    def test_connected_by_default(self):
        assert net_static().is_connected()

    def test_deterministic_given_seed(self):
        a, b = net_static(seed=5), net_static(seed=5)
        assert [a.position(i) for i in range(10)] == [
            b.position(i) for i in range(10)]

    def test_different_seeds_differ(self):
        assert net_static(seed=1).position(0) != net_static(seed=2).position(0)

    def test_explicit_positions(self):
        positions = [(float(i * 150), 0.0) for i in range(5)]
        net = SimNetwork(NetworkConfig(n=5, avg_degree=10, seed=0,
                                       require_connected=False),
                         positions=positions)
        assert net.position(0) == (0.0, 0.0)
        assert net.true_neighbors(0) == [1]  # only 150m away

    def test_invalid_mobility_model(self):
        with pytest.raises(ValueError):
            SimNetwork(NetworkConfig(n=5, mobility="teleport"))

    def test_snapshot_graph_consistent(self):
        net = net_static(n=50)
        g = net.snapshot_graph()
        assert g.n == 50
        for u in range(50):
            assert sorted(g.adjacency[u]) == sorted(net.true_neighbors(u))


class TestNeighborTables:
    def test_known_matches_true_initially(self):
        net = net_static()
        for node in (0, 10, 40):
            assert sorted(net.known_neighbors(node)) == sorted(
                net.true_neighbors(node))

    def test_known_goes_stale_under_mobility(self):
        net = net_mobile(max_speed=20.0, seed=3)
        net.advance(9.0)  # just before the next heartbeat
        stale = {v: set(net.known_neighbors(v)) for v in range(20)}
        diffs = sum(
            1 for v in range(20)
            if stale[v] != set(net.true_neighbors(v)))
        assert diffs > 0  # at 20 m/s, 9 s of movement breaks some links

    def test_heartbeat_refreshes_tables(self):
        def staleness(net):
            return sum(
                1 for v in range(20)
                if set(net.known_neighbors(v)) != set(net.true_neighbors(v)))

        just_refreshed = net_mobile(max_speed=20.0, seed=3)
        just_refreshed.advance(10.5)  # shortly after the 10 s heartbeat
        long_stale = net_mobile(max_speed=20.0, seed=3)
        long_stale.advance(9.5)  # ~9.5 s since the initial snapshot
        assert staleness(just_refreshed) < staleness(long_stale)

    def test_static_network_tables_never_stale(self):
        net = net_static()
        net.advance(100.0)
        for v in (0, 5, 9):
            assert sorted(net.known_neighbors(v)) == sorted(
                net.true_neighbors(v))


class TestOneHopMessaging:
    def test_unicast_to_neighbor_succeeds(self):
        net = net_static()
        v = net.true_neighbors(0)[0]
        assert net.one_hop_unicast(0, v)

    def test_unicast_out_of_range_fails(self):
        net = net_static()
        far = max(net.alive_nodes(),
                  key=lambda u: net.distance(net.position(0), net.position(u)))
        assert not net.one_hop_unicast(0, far)

    def test_unicast_to_dead_node_fails(self):
        net = net_static()
        v = net.true_neighbors(0)[0]
        net.fail_node(v)
        assert not net.one_hop_unicast(0, v)

    def test_unicast_counts_message_even_on_failure(self):
        net = net_static()
        before = net.counters["network"]
        far = max(net.alive_nodes(),
                  key=lambda u: net.distance(net.position(0), net.position(u)))
        net.one_hop_unicast(0, far)
        assert net.counters["network"] == before + 1

    def test_unicast_advances_clock(self):
        net = net_static()
        t0 = net.now
        v = net.true_neighbors(0)[0]
        net.one_hop_unicast(0, v)
        assert net.now == pytest.approx(t0 + net.config.hop_latency)

    def test_broadcast_reaches_current_neighbors(self):
        net = net_static()
        receivers = net.one_hop_broadcast(0)
        assert sorted(receivers) == sorted(net.true_neighbors(0))

    def test_random_drop_probability(self):
        net = net_static(drop_prob=1.0)
        v = net.true_neighbors(0)[0]
        assert not net.one_hop_unicast(0, v)
        assert net.one_hop_broadcast(0) == []


class TestRouting:
    def test_route_between_any_pair(self):
        net = net_static(seed=2)
        result = net.route(0, 60)
        assert result.success
        assert result.path[0] == 0 and result.path[-1] == 60

    def test_route_hops_counted_as_messages(self):
        net = net_static(seed=2)
        result = net.route(0, 60)
        assert result.data_messages == result.hops

    def test_first_route_pays_discovery(self):
        net = net_static(seed=2)
        result = net.route(0, 60)
        assert result.routing_messages > 0

    def test_cached_route_is_free_of_discovery(self):
        net = net_static(seed=2)
        net.route(0, 60)
        again = net.route(0, 60)
        assert again.success
        assert again.routing_messages == 0

    def test_route_to_self(self):
        net = net_static()
        result = net.route(5, 5)
        assert result.success and result.hops == 0

    def test_route_to_dead_node_fails(self):
        net = net_static(seed=2)
        net.fail_node(60)
        result = net.route(0, 60)
        assert not result.success

    def test_invalidate_routes_forces_rediscovery(self):
        net = net_static(seed=2)
        net.route(0, 60)
        net.invalidate_routes()
        again = net.route(0, 60)
        assert again.routing_messages > 0

    def test_discover_path_does_not_send_data(self):
        net = net_static(seed=2)
        before = net.counters["network"]
        path, cost = net.discover_path(0, 60)
        assert path is not None and cost > 0
        assert net.counters["network"] == before

    def test_scoped_route_within_ttl(self):
        net = net_static(seed=2)
        v = net.true_neighbors(0)[0]
        result = net.scoped_route(0, v, max_hops=3)
        assert result.success

    def test_scoped_route_fails_beyond_ttl(self):
        net = net_static(seed=2)
        # Find a node more than 3 hops away.
        from collections import deque
        dist = {0: 0}
        q = deque([0])
        while q:
            u = q.popleft()
            for w in net.true_neighbors(u):
                if w not in dist:
                    dist[w] = dist[u] + 1
                    q.append(w)
        far = [v for v, d in dist.items() if d > 3]
        if far:
            assert not net.scoped_route(0, far[0], max_hops=3).success


class TestFlood:
    def test_ttl1_covers_origin_and_neighbors(self):
        net = net_static()
        outcome = net.flood(0, ttl=1)
        assert set(outcome.covered) == {0} | set(net.true_neighbors(0))
        assert outcome.covered[0] == 0

    def test_hop_counts_are_bfs_distances(self):
        net = net_static()
        outcome = net.flood(0, ttl=3)
        for node, hop in outcome.covered.items():
            assert 0 <= hop <= 3

    def test_coverage_monotone_in_ttl(self):
        net = net_static()
        c1 = net.flood(0, ttl=1).coverage
        c3 = net.flood(0, ttl=3).coverage
        assert c3 >= c1

    def test_reverse_path_walks_tree_to_origin(self):
        net = net_static()
        outcome = net.flood(0, ttl=3)
        node = max(outcome.covered, key=outcome.covered.get)
        path = outcome.reverse_path(node)
        assert path[0] == node and path[-1] == 0
        assert len(path) - 1 == outcome.covered[node]

    def test_messages_equal_rebroadcasting_nodes(self):
        net = net_static()
        outcome = net.flood(0, ttl=2)
        inner = sum(1 for hop in outcome.covered.values() if hop < 2)
        assert outcome.messages == inner

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            net_static().flood(0, ttl=0)


class TestChurnOperations:
    def test_fail_node_removes_from_alive(self):
        net = net_static()
        net.fail_node(3)
        assert not net.is_alive(3)
        assert 3 not in net.alive_nodes()

    def test_fail_node_idempotent(self):
        net = net_static()
        net.fail_node(3)
        net.fail_node(3)
        assert net.n_alive == 79

    def test_failed_node_leaves_neighbor_ground_truth(self):
        net = net_static()
        v = net.true_neighbors(0)[0]
        net.fail_node(v)
        assert v not in net.true_neighbors(0)

    def test_join_node_gets_fresh_id(self):
        net = net_static()
        new = net.join_node()
        assert new == 80
        assert net.is_alive(new)

    def test_joiner_knows_neighbors_immediately(self):
        net = net_static()
        new = net.join_node(position=net.position(0))
        assert sorted(net.known_neighbors(new)) == sorted(
            net.true_neighbors(new))

    def test_apply_churn_batch(self):
        net = net_static(n=100, seed=4)
        outcome = apply_churn(net, fail_fraction=0.2, join_fraction=0.1,
                              rng=random.Random(0), keep_connected=True)
        assert len(outcome.joined) == 10
        assert net.is_connected()
        assert net.n_alive == 100 - len(outcome.failed) + 10

    def test_apply_churn_protected_nodes_survive(self):
        net = net_static(n=60, seed=4)
        apply_churn(net, fail_fraction=0.5, rng=random.Random(0),
                    keep_connected=False, protected={0, 1})
        assert net.is_alive(0) and net.is_alive(1)

    def test_apply_churn_validates_fraction(self):
        with pytest.raises(ValueError):
            apply_churn(net_static(), fail_fraction=1.5)
