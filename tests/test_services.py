"""Tests for the services layer: location service, register, pub/sub,
refresh daemon."""

import math
import random

import pytest

from repro.core import ProbabilisticBiquorum, RandomStrategy, UniquePathStrategy
from repro.membership import FullMembership
from repro.services import (
    LocationService,
    ProbabilisticRegister,
    PubSubService,
    RefreshDaemon,
    Timestamp,
    ZERO_TS,
)
from repro.simnet import NetworkConfig, SimNetwork, apply_churn


def build(n=100, seed=0, epsilon=0.05, lookup=None, **bq_kw):
    net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed))
    membership = FullMembership(net)
    bq = ProbabilisticBiquorum(
        net, advertise=RandomStrategy(membership),
        lookup=lookup or UniquePathStrategy(),
        epsilon=epsilon, **bq_kw)
    return net, bq


class TestLocationService:
    def test_advertise_then_lookup(self):
        net, bq = build()
        svc = LocationService(bq)
        svc.advertise(0, "printer", (3, 4))
        receipt = svc.lookup(50, "printer")
        assert receipt.found
        assert receipt.value == (3, 4)

    def test_lookup_unknown_key_misses(self):
        net, bq = build()
        svc = LocationService(bq)
        receipt = svc.lookup(10, "nothing")
        assert not receipt.found
        assert receipt.value is None

    def test_owner_lookup_is_free(self):
        net, bq = build()
        svc = LocationService(bq)
        ad = svc.advertise(0, "k", "v")
        owner = ad.quorum[0]
        receipt = svc.lookup(owner, "k")
        assert receipt.found and receipt.messages == 0

    def test_versions_increase(self):
        net, bq = build()
        svc = LocationService(bq)
        v1 = svc.advertise(0, "k", "old").version
        v2 = svc.advertise(0, "k", "new").version
        assert v2 > v1

    def test_newer_version_wins_at_owner(self):
        net, bq = build()
        svc = LocationService(bq)
        svc.advertise(0, "k", "old")
        svc.advertise(0, "k", "new")
        for owner in svc.owners_of("k"):
            entry = svc.owner_lookup(owner, "k")
            if entry is not None and entry.value == "new":
                break
        else:
            pytest.fail("no owner stores the new value")

    def test_owners_of_excludes_dead(self):
        net, bq = build()
        svc = LocationService(bq)
        ad = svc.advertise(0, "k", "v")
        victim = ad.quorum[0]
        net.fail_node(victim)
        assert victim not in svc.owners_of("k")

    def test_caching_at_originator(self):
        net, bq = build()
        svc = LocationService(bq, enable_caching=True)
        svc.advertise(0, "k", "v")
        first = svc.lookup(50, "k")
        assert first.found
        second = svc.lookup(50, "k")
        assert second.found and second.from_cache
        assert second.messages == 0

    def test_cache_disabled_by_default(self):
        net, bq = build()
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        svc.lookup(50, "k")
        second = svc.lookup(50, "k")
        assert not second.from_cache or second.access is None

    def test_cache_eviction_bounded(self):
        net, bq = build()
        svc = LocationService(bq, enable_caching=True, cache_capacity=2)
        for i in range(5):
            svc.cache_at(7, f"k{i}", i, i)
        assert svc.cache_lookup(7, "k0") is None
        assert svc.cache_lookup(7, "k4") is not None

    def test_evict_bystander_keeps_owned(self):
        net, bq = build()
        svc = LocationService(bq, enable_caching=True)
        ad = svc.advertise(0, "k", "v")
        owner = ad.quorum[0]
        svc.cache_at(owner, "other", 1, 1)
        svc.evict_bystander_state(owner)
        assert svc.cache_lookup(owner, "other") is None
        assert svc.owner_lookup(owner, "k") is not None

    def test_readvertise_restores_after_churn(self):
        net, bq = build(seed=3)
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        apply_churn(net, fail_fraction=0.4, rng=random.Random(0),
                    keep_connected=True, protected={0})
        bq.advertise_strategy.membership.refresh()
        receipt = svc.readvertise("k")
        assert receipt is not None
        assert len(svc.owners_of("k")) >= receipt.access.quorum_size

    def test_readvertise_unknown_key(self):
        net, bq = build()
        svc = LocationService(bq)
        assert svc.readvertise("ghost") is None

    def test_readvertise_all(self):
        net, bq = build()
        svc = LocationService(bq)
        for i in range(3):
            svc.advertise(i, f"k{i}", i)
        receipts = svc.readvertise_all()
        assert len(receipts) == 3

    def test_readvertise_falls_back_to_surviving_owner(self):
        net, bq = build(seed=4)
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        net.fail_node(0)
        receipt = svc.readvertise("k")
        assert receipt is not None


class TestRegister:
    def make_register(self, seed=0):
        net, bq = build(seed=seed,
                        lookup=UniquePathStrategy(early_halting=False))
        return net, ProbabilisticRegister(bq)

    def test_read_empty_returns_zero_ts(self):
        net, reg = self.make_register()
        result = reg.read(0)
        assert result.timestamp == ZERO_TS
        assert result.value is None

    def test_write_then_read(self):
        net, reg = self.make_register()
        reg.write(0, "hello")
        result = reg.read(50)
        assert result.value == "hello"

    def test_writes_monotone_timestamps(self):
        net, reg = self.make_register()
        t1 = reg.write(0, "a").timestamp
        t2 = reg.write(1, "b").timestamp
        assert t1 < t2

    def test_last_write_wins(self):
        net, reg = self.make_register()
        reg.write(0, "first")
        reg.write(1, "second")
        assert reg.read(70).value == "second"

    def test_read_repair_propagates(self):
        net, reg = self.make_register()
        reg.write(0, "x")
        before = len(reg.replicas_at(Timestamp(1, 0)))
        reg.read(50)
        after = len(reg.replicas_at(Timestamp(1, 0)))
        assert after >= before

    def test_concurrent_writers_ordered_by_id(self):
        a = Timestamp(3, 1)
        b = Timestamp(3, 2)
        assert a < b

    def test_message_accounting(self):
        net, reg = self.make_register()
        result = reg.write(0, "x")
        assert result.messages > 0
        assert len(result.phases) == 2

    def test_survives_partial_failures(self):
        net, reg = self.make_register(seed=5)
        reg.write(0, "durable")
        # Fail a third of the network (keeping the reader alive).
        victims = [v for v in net.alive_nodes() if v not in (0, 50)][:30]
        for v in victims:
            net.fail_node(v)
        reg.biquorum.advertise_strategy.membership.refresh()
        reg.biquorum.resize()
        assert reg.read(50).value == "durable"


class TestPubSub:
    def make_pubsub(self, seed=0):
        net, bq = build(seed=seed,
                        lookup=UniquePathStrategy(early_halting=False))
        return net, PubSubService(bq)

    def test_subscribe_then_publish_notifies(self):
        net, ps = self.make_pubsub()
        ps.subscribe(5, "news")
        result = ps.publish(80, "news", {"headline": "hi"})
        assert 5 in result.matched_subscribers
        assert 5 in result.notified_subscribers
        assert (5, "news", {"headline": "hi"}) in ps.delivered

    def test_publish_without_subscribers(self):
        net, ps = self.make_pubsub()
        result = ps.publish(0, "empty-topic", "x")
        assert result.matched_subscribers == []
        assert result.notified_subscribers == []

    def test_topic_isolation(self):
        net, ps = self.make_pubsub()
        ps.subscribe(5, "sports")
        result = ps.publish(80, "politics", "x")
        assert 5 not in result.matched_subscribers

    def test_unsubscribe_tombstone_shadows(self):
        net, ps = self.make_pubsub(seed=2)
        ps.subscribe(5, "news")
        ps.unsubscribe(5, "news")
        result = ps.publish(80, "news", "x")
        assert 5 not in result.notified_subscribers

    def test_multiple_subscribers(self):
        net, ps = self.make_pubsub(seed=3)
        for sub in (5, 6, 7):
            ps.subscribe(sub, "t")
        result = ps.publish(80, "t", "x")
        assert len(set(result.notified_subscribers) & {5, 6, 7}) >= 2

    def test_publisher_not_notified_of_own_event(self):
        net, ps = self.make_pubsub()
        ps.subscribe(5, "t")
        result = ps.publish(5, "t", "x")
        assert 5 not in result.notified_subscribers

    def test_message_accounting(self):
        net, ps = self.make_pubsub()
        ps.subscribe(5, "t")
        result = ps.publish(80, "t", "x")
        assert result.messages > 0


class TestRefreshDaemon:
    def test_periodic_refresh_runs(self):
        net, bq = build()
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        daemon = RefreshDaemon(svc, interval=10.0)
        net.advance(25.0)
        assert daemon.stats.rounds == 2
        assert daemon.stats.readvertised == 2
        daemon.stop()

    def test_interval_from_degradation_analysis(self):
        net, bq = build()
        svc = LocationService(bq)
        daemon = RefreshDaemon(svc, epsilon=0.05, min_intersection=0.9,
                               churn_fraction_per_second=0.001)
        assert daemon.plan is not None
        assert daemon.interval == pytest.approx(
            daemon.plan.tolerable_churn_fraction / 0.001)
        daemon.stop()

    def test_refresh_now(self):
        net, bq = build()
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        daemon = RefreshDaemon(svc, interval=1000.0)
        assert daemon.refresh_now() == 1
        daemon.stop()

    def test_missing_parameters_rejected(self):
        net, bq = build()
        svc = LocationService(bq)
        with pytest.raises(ValueError):
            RefreshDaemon(svc)

    def test_refresh_keeps_data_alive_under_churn(self):
        net, bq = build(seed=6)
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        daemon = RefreshDaemon(svc, interval=5.0)
        rng = random.Random(0)
        for _ in range(4):
            apply_churn(net, fail_fraction=0.1, rng=rng,
                        keep_connected=True, protected={0})
            bq.advertise_strategy.membership.refresh()
            net.advance(5.5)
        receipt = svc.lookup(net.random_alive_node(rng), "k")
        assert receipt.found
        daemon.stop()

    def test_lost_never_negative_when_keys_advertised_mid_round(self):
        # Regression: a key advertised between the round's key snapshot
        # and readvertise_all used to push the lost count negative.
        net, bq = build()
        svc = LocationService(bq)
        svc.advertise(0, "a", "v")
        daemon = RefreshDaemon(svc, interval=1000.0)
        original = svc.readvertise_all

        def advertise_then_refresh():
            svc.advertise(1, "b", "w")
            return original()

        svc.readvertise_all = advertise_then_refresh
        daemon.refresh_now()
        assert daemon.stats.lost == 0
        assert daemon.stats.readvertised == 2
        daemon.stop()

    def test_stuck_key_counted_lost_once_until_recovery(self):
        # Regression: back-to-back rounds re-counted the same dead key.
        net, bq = build()
        svc = LocationService(bq)
        receipt = svc.advertise(0, "k", "v")
        daemon = RefreshDaemon(svc, interval=1000.0)
        for node in {0, *receipt.quorum}:
            net.fail_node(node)
        assert daemon.refresh_now() == 0
        assert daemon.stats.lost == 1
        daemon.refresh_now()
        assert daemon.stats.lost == 1
        daemon.stop()

    def test_adaptive_rederives_interval_from_observed_churn(self):
        net, bq = build(seed=6)
        svc = LocationService(bq)
        svc.advertise(0, "k", "v")
        daemon = RefreshDaemon(svc, interval=30.0, epsilon=0.05,
                               min_intersection=0.9, adaptive=True,
                               min_interval=5.0, max_interval=500.0)
        apply_churn(net, fail_fraction=0.1, rng=random.Random(1),
                    keep_connected=True, protected={0})
        net.advance(31.0)
        assert daemon.stats.rounds == 1
        assert daemon.stats.interval_updates >= 1
        assert daemon.interval != 30.0
        assert 5.0 <= daemon.interval <= 500.0
        daemon.stop()

    def test_adaptive_without_churn_keeps_interval(self):
        net, bq = build()
        svc = LocationService(bq)
        daemon = RefreshDaemon(svc, interval=10.0, epsilon=0.05,
                               min_intersection=0.9, adaptive=True)
        net.advance(11.0)
        assert daemon.stats.rounds == 1
        assert daemon.stats.interval_updates == 0
        assert daemon.interval == 10.0
        daemon.stop()

    def test_adaptive_missing_parameters_rejected(self):
        net, bq = build()
        svc = LocationService(bq)
        with pytest.raises(ValueError):
            RefreshDaemon(svc, interval=10.0, adaptive=True)
