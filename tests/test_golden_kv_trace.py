"""Golden-trace conformance for the kv serving benchmark.

Same three-layer contract as ``test_golden_trace.py``, pinned on a tiny
seeded ``repro kv`` sequential run: fixture self-consistency, byte-
identical regeneration, and the ``obs diff --fail-on-change`` CI gate —
plus a mutation check that flips one ``kv-op`` event and asserts the
gate catches it.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.query import diff_summaries, summarize_trace, summary_to_jsonable

GOLDEN_DIR = Path(__file__).parent / "golden"
GOLDEN_TRACE = GOLDEN_DIR / "kv_trace.jsonl"
GOLDEN_SUMMARY = GOLDEN_DIR / "kv_summary.json"
REPO_ROOT = Path(__file__).resolve().parent.parent

# Must match the regeneration recipe in tests/golden/README.md.
KV_ARGS = ["kv", "--kv-backend", "sequential", "--n", "30", "--keys", "4",
           "--ops", "50", "--ttl", "30", "--rate", "20", "--reps", "1",
           "--seed", "7"]


def _regenerate(tmp_path: Path) -> Path:
    trace = tmp_path / "fresh.jsonl"
    env = {k: v for k, v in os.environ.items()
           if not k.startswith("REPRO_")}
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_JOBS"] = "1"  # byte-stable line order
    proc = subprocess.run(
        [sys.executable, "-m", "repro", *KV_ARGS, "--trace", str(trace)],
        capture_output=True, text=True, env=env, cwd=tmp_path)
    assert proc.returncode == 0, proc.stderr
    assert trace.exists()
    return trace


@pytest.fixture(scope="module")
def fresh_trace(tmp_path_factory) -> Path:
    return _regenerate(tmp_path_factory.mktemp("golden_kv"))


def test_committed_summary_matches_committed_trace():
    produced = summary_to_jsonable(summarize_trace(str(GOLDEN_TRACE)))
    committed = json.loads(GOLDEN_SUMMARY.read_text())
    assert produced == committed, (
        "fixture drift: regenerate per tests/golden/README.md")


def test_fixture_contains_kv_ops():
    kinds = [json.loads(line)["kind"]
             for line in GOLDEN_TRACE.read_text().splitlines()]
    assert kinds.count("kv-op") == 50


def test_regenerated_trace_is_byte_identical(fresh_trace):
    assert fresh_trace.read_bytes() == GOLDEN_TRACE.read_bytes(), (
        "kv event stream changed; if intentional, regenerate the fixtures")


def test_regenerated_summary_has_no_diff(fresh_trace):
    changes = diff_summaries(summarize_trace(str(GOLDEN_TRACE)),
                             summarize_trace(str(fresh_trace)))
    assert changes == []


def test_obs_diff_gate_passes(fresh_trace):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "diff", str(GOLDEN_TRACE),
         str(fresh_trace), "--fail-on-change"],
        capture_output=True, text=True, env=env)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_obs_diff_gate_detects_kv_mutation(fresh_trace, tmp_path):
    # Flip one successful get to a miss: the gate must fail loudly.
    lines = GOLDEN_TRACE.read_text().splitlines()
    mutated, flipped = [], False
    for line in lines:
        if (not flipped and '"kind":"kv-op"' in line
                and '"op":"get"' in line and '"ok":true' in line):
            line = line.replace('"ok":true', '"ok":false')
            flipped = True
        mutated.append(line)
    assert flipped, "golden kv trace has no successful get to flip"
    bad = tmp_path / "mutated.jsonl"
    bad.write_text("\n".join(mutated) + "\n")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "obs", "diff", str(GOLDEN_TRACE),
         str(bad), "--fail-on-change"],
        capture_output=True, text=True, env=env)
    assert proc.returncode != 0
