"""Tests for workload generation, dynamic tau estimation (Section 5.4),
the Zipf-caching interaction (Section 7.1), and ASCII chart rendering."""

import math
import random

import pytest

from repro.analysis import required_quorum_product
from repro.experiments.ascii_plot import render_series
from repro.experiments.workloads import (
    OperationMix,
    TauEstimator,
    ZipfKeySampler,
    generate_operation_mix,
)


class TestZipfSampler:
    def test_rank_one_most_popular(self):
        sampler = ZipfKeySampler([f"k{i}" for i in range(20)],
                                 exponent=1.2, rng=random.Random(0))
        counts = {}
        for _ in range(3000):
            key = sampler.sample()
            counts[key] = counts.get(key, 0) + 1
        assert counts["k0"] == max(counts.values())

    def test_exponent_zero_is_uniform(self):
        sampler = ZipfKeySampler(["a", "b", "c", "d"], exponent=0.0,
                                 rng=random.Random(1))
        counts = {}
        for _ in range(4000):
            key = sampler.sample()
            counts[key] = counts.get(key, 0) + 1
        assert max(counts.values()) < 1.35 * min(counts.values())

    def test_probability_of_sums_to_one(self):
        sampler = ZipfKeySampler(["a", "b", "c"], exponent=1.0)
        total = sum(sampler.probability_of(k) for k in ("a", "b", "c"))
        assert total == pytest.approx(1.0)

    def test_empirical_matches_probability(self):
        sampler = ZipfKeySampler(["a", "b", "c"], exponent=1.0,
                                 rng=random.Random(2))
        hits = sum(sampler.sample() == "a" for _ in range(5000)) / 5000
        assert hits == pytest.approx(sampler.probability_of("a"), abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfKeySampler([])
        with pytest.raises(ValueError):
            ZipfKeySampler(["a"], exponent=-1.0)


class TestTauEstimator:
    def test_estimates_ratio(self):
        est = TauEstimator(window=128)
        for _ in range(10):
            est.record_advertise()
            for _ in range(10):
                est.record_lookup()
        assert est.tau() == pytest.approx(10.0, rel=0.2)

    def test_window_adapts_to_drift(self):
        est = TauEstimator(window=64)
        for _ in range(64):
            est.record_lookup()
        assert est.tau() > 10
        for _ in range(32):
            est.record_advertise()
        assert est.tau() < 2.5  # old lookups aged out of the window

    def test_prior_bridges_empty_window(self):
        est = TauEstimator(prior_tau=5.0)
        assert est.tau() == pytest.approx(5.0)

    def test_recommendation_meets_corollary(self):
        est = TauEstimator()
        for _ in range(5):
            est.record_advertise()
        for _ in range(50):
            est.record_lookup()
        # The paper's Section 5.4 example: Cost_a = D = 5, Cost_l = 1;
        # tau ~ 10 gives |Ql|/|Qa| ~ 1/2.
        rec = est.recommend_sizes(n=800, epsilon=0.1, cost_a=5.0,
                                  cost_l=1.0)
        assert (rec.advertise_size * rec.lookup_size
                >= required_quorum_product(800, 0.1) - 2)
        # Lookup-heavy with cheap lookups: lookup quorum strictly smaller.
        assert rec.lookup_size < rec.advertise_size

    def test_validation(self):
        with pytest.raises(ValueError):
            TauEstimator(window=1)
        with pytest.raises(ValueError):
            TauEstimator(prior_tau=0.0)


class TestOperationMix:
    def test_every_key_advertised_first(self):
        mix = generate_operation_mix([f"k{i}" for i in range(5)],
                                     n_operations=60, tau=10.0,
                                     rng=random.Random(3))
        first_ops = mix.operations[:5]
        assert all(op == "advertise" for op, _ in first_ops)

    def test_realised_tau_near_requested(self):
        mix = generate_operation_mix([f"k{i}" for i in range(5)],
                                     n_operations=600, tau=10.0,
                                     rng=random.Random(4))
        assert 5.0 <= mix.tau <= 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_operation_mix(["a", "b"], n_operations=1)


class TestZipfCachingInteraction:
    def test_caching_pays_off_for_popular_keys(self):
        """Section 7.1: popular items terminate much faster with caching."""
        from repro.core import (ProbabilisticBiquorum, RandomStrategy,
                                UniquePathStrategy)
        from repro.membership import FullMembership
        from repro.services import LocationService
        from repro.simnet import NetworkConfig, SimNetwork

        def run(enable_caching):
            net = SimNetwork(NetworkConfig(n=100, avg_degree=10, seed=6))
            bq = ProbabilisticBiquorum(
                net, advertise=RandomStrategy(FullMembership(net)),
                lookup=UniquePathStrategy(), epsilon=0.1)
            svc = LocationService(bq, enable_caching=enable_caching)
            keys = [f"k{i}" for i in range(6)]
            rng = random.Random(7)
            for key in keys:
                svc.advertise(net.random_alive_node(rng), key, key)
            sampler = ZipfKeySampler(keys, exponent=1.4,
                                     rng=random.Random(8))
            lookers = rng.sample(net.alive_nodes(), 5)  # small looker pool
            messages = 0
            for _ in range(60):
                receipt = svc.lookup(rng.choice(lookers), sampler.sample())
                messages += receipt.messages
            return messages

        assert run(True) < run(False)


class TestAsciiPlot:
    def test_renders_axes_and_legend(self):
        out = render_series({"hit": [(0, 0.5), (1, 0.9)]},
                            x_label="size", y_label="ratio")
        assert "h" in out
        assert "size vs ratio" in out
        assert "= hit" in out

    def test_multiple_series_distinct_markers(self):
        out = render_series({"alpha": [(0, 1)], "beta": [(1, 2)]})
        assert "= alpha" in out and "= beta" in out

    def test_empty_series(self):
        assert render_series({}) == "(no data)"

    def test_single_point_no_crash(self):
        out = render_series({"s": [(5.0, 5.0)]})
        assert "s" in out

    def test_extremes_on_canvas(self):
        out = render_series({"d": [(0, 0), (10, 10)]}, width=20, height=5)
        lines = out.splitlines()
        assert "d" in lines[0]              # max lands on the top row
        assert "d" in lines[4]              # min on the bottom row
