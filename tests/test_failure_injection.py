"""Failure-injection tests: random frame drops, stale membership, mass
failures, and continuous churn while the quorum system operates."""

import math
import random

import pytest

from repro.core import (
    FloodingStrategy,
    ProbabilisticBiquorum,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.membership import FullMembership, RandomMembership
from repro.randomwalk import random_walk
from repro.services import LocationService
from repro.simnet import ChurnProcess, NetworkConfig, SimNetwork


def make_net(n=100, seed=0, **kw):
    kw.setdefault("avg_degree", 10)
    return SimNetwork(NetworkConfig(n=n, seed=seed, **kw))


class TestRandomFrameDrops:
    def test_salvation_overcomes_moderate_loss(self):
        net = make_net(drop_prob=0.2, seed=1)
        completions = 0
        for i in range(10):
            walk = random_walk(net, i, target_unique=12, salvation=True,
                               rng=random.Random(i))
            completions += walk.completed
        assert completions >= 8

    def test_without_salvation_loss_kills_walks(self):
        net_s = make_net(drop_prob=0.3, seed=1)
        net_n = make_net(drop_prob=0.3, seed=1)
        with_s = sum(
            random_walk(net_s, i, target_unique=12, salvation=True,
                        rng=random.Random(i)).completed for i in range(12))
        without = sum(
            random_walk(net_n, i, target_unique=12, salvation=False,
                        rng=random.Random(i)).completed for i in range(12))
        assert with_s > without

    def test_walk_messages_grow_with_loss(self):
        clean = make_net(drop_prob=0.0, seed=2)
        lossy = make_net(drop_prob=0.3, seed=2)
        msgs_clean = sum(
            random_walk(clean, i, target_unique=12,
                        rng=random.Random(i)).messages for i in range(8))
        msgs_lossy = sum(
            random_walk(lossy, i, target_unique=12,
                        rng=random.Random(i)).messages for i in range(8))
        assert msgs_lossy > msgs_clean

    def test_flooding_coverage_shrinks_under_loss(self):
        clean = make_net(drop_prob=0.0, seed=3)
        lossy = make_net(drop_prob=0.4, seed=3)
        cov_clean = clean.flood(0, ttl=3).coverage
        cov_lossy = lossy.flood(0, ttl=3).coverage
        assert cov_lossy <= cov_clean

    def test_biquorum_still_works_under_loss(self):
        net = make_net(drop_prob=0.1, seed=4)
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(), epsilon=0.05)
        svc = LocationService(bq)
        rng = random.Random(5)
        for i in range(5):
            svc.advertise(net.random_alive_node(rng), f"k{i}", i)
        hits = sum(svc.lookup(net.random_alive_node(rng),
                              f"k{i % 5}").found for i in range(20))
        assert hits >= 12


class TestStaleMembership:
    def test_adaptation_under_stale_views(self):
        net = make_net(seed=6)
        membership = RandomMembership(net, refresh_interval=1e9)
        # Kill a third of the network; views remain fully stale.
        victims = net.alive_nodes()[10:43]
        for v in victims:
            net.fail_node(v)
        strategy = RandomStrategy(membership, adaptation_retries=4)
        stored = []
        result = strategy.advertise(net, 0, stored.append, target_size=12)
        assert all(net.is_alive(v) for v in result.quorum)
        # Adaptation fills most of the quorum despite 33% dead targets.
        assert result.quorum_size >= 7

    def test_lookup_skips_dead_members(self):
        net = make_net(seed=7)
        membership = FullMembership(net, refresh_interval=1e9)
        strategy = RandomStrategy(membership)
        stored = set()
        adv = strategy.advertise(net, 0, stored.add, target_size=20)
        for v in list(stored)[:10]:
            net.fail_node(v)
        result = strategy.lookup(
            net, 50, lambda v: "x" if v in stored and net.is_alive(v) else None,
            target_size=20)
        assert all(net.is_alive(v) for v in result.quorum)


class TestMassFailures:
    def test_failures_only_intersection_holds(self):
        """Section 6.1 case 1, end to end: fail 30% (no joins), keep |Ql|
        constant — the hit ratio must NOT degrade."""
        net = make_net(n=150, seed=8, avg_degree=15)
        membership = FullMembership(net)
        q0 = math.ceil(math.sqrt(150 * math.log(20)))
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(),
            advertise_size=q0, lookup_size=q0,
            adjust_to_network_size=False)
        svc = LocationService(bq)
        rng = random.Random(9)
        keys = [f"k{i}" for i in range(6)]
        for key in keys:
            svc.advertise(net.random_alive_node(rng), key, key)

        from repro.simnet import apply_churn
        apply_churn(net, fail_fraction=0.3, rng=rng, keep_connected=True)
        membership.refresh()

        hits = sum(svc.lookup(net.random_alive_node(rng),
                              rng.choice(keys)).found for _ in range(30))
        assert hits / 30 >= 0.8

    def test_quorum_survives_up_to_fault_tolerance(self):
        """With q-sized quorums, data survives while >= q nodes live."""
        net = make_net(n=60, seed=10, avg_degree=14)
        membership = FullMembership(net)
        strategy = RandomStrategy(membership)
        stored = set()
        strategy.advertise(net, 0, stored.add, target_size=15)
        # Fail everything except the quorum and a couple of lookers.
        survivors = set(stored) | {0, 1}
        for v in net.alive_nodes():
            if v not in survivors:
                net.fail_node(v)
        alive_owners = [v for v in stored if net.is_alive(v)]
        assert len(alive_owners) == len(stored)

    def test_disconnection_detected(self):
        net = make_net(n=60, seed=11)
        # Remove enough nodes without the connectivity guard to split it.
        rng = random.Random(0)
        from repro.simnet import apply_churn
        apply_churn(net, fail_fraction=0.6, rng=rng, keep_connected=False)
        # is_connected must report honestly either way.
        assert net.is_connected() in (True, False)


class TestContinuousChurnDuringOperation:
    def test_service_operates_through_live_churn(self):
        net = make_net(n=120, seed=12, avg_degree=15)
        membership = RandomMembership(net, refresh_interval=20.0)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(), epsilon=0.05)
        svc = LocationService(bq)
        rng = random.Random(13)
        churn = ChurnProcess(net, failure_rate=0.05, join_rate=0.05,
                             rng=random.Random(14), keep_connected=True)
        keys = []
        hits = attempts = 0
        for i in range(15):
            key = f"k{i}"
            origin = net.random_alive_node(rng)
            svc.advertise(origin, key, key)
            keys.append(key)
            net.advance(5.0)  # churn happens between operations
            looker = net.random_alive_node(rng)
            result = svc.lookup(looker, rng.choice(keys))
            attempts += 1
            hits += result.found
        churn.stop()
        assert hits / attempts >= 0.6

    def test_flooding_lookup_through_churn(self):
        net = make_net(n=100, seed=15, avg_degree=15)
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=FloodingStrategy(expanding_ring=True), epsilon=0.1)
        svc = LocationService(bq)
        rng = random.Random(16)
        churn = ChurnProcess(net, failure_rate=0.03, rng=random.Random(17),
                             keep_connected=True)
        svc.advertise(net.random_alive_node(rng), "k", "v")
        net.advance(30.0)
        membership.refresh()
        hits = sum(svc.lookup(net.random_alive_node(rng), "k").found
                   for _ in range(10))
        churn.stop()
        assert hits >= 6
