"""Live invariant watchers, the SLO monitor, and their CLI/campaign hooks.

Three layers of coverage:

* unit — the subscriber API, each builtin watcher on hand-built event
  streams (including *mutated* streams proving every watcher can fire),
  the P² estimator, and the bounded histogram mode;
* integration — full fault campaigns run clean under every watcher,
  strict audit turns a tampered stream into a raise, and the golden
  fig8 trace replays with zero violations;
* CLI — ``repro obs watch`` exit codes, verdict reports, stdin
  summarize, and the manifest's trace-schema stamp.
"""

import json
import math
import random

import pytest

from repro.faults import run_fault_campaign
from repro.obs import (
    MANIFEST_SCHEMA,
    TRACE_SCHEMA,
    AuditError,
    ConservationWatcher,
    EventTrace,
    Histogram,
    MetricsRegistry,
    MonotonicityWatcher,
    NoFabricationWatcher,
    P2Quantile,
    QuorumIntersectionWatcher,
    SloMonitor,
    SloSpec,
    TraceEvent,
    Watcher,
    WatcherHub,
    attach_watchers,
    builtin_watchers,
    collect_manifest,
    load_slo_specs,
    replay_trace,
)
from repro.obs.audit import AccountingAuditor
from repro.simnet import NetworkConfig, SimNetwork

GOLDEN_TRACE = "tests/golden/fig8_trace.jsonl"


def _ev(seq, kind, /, t=0.0, **fields):
    return TraceEvent(seq=seq, t=t, kind=kind, fields=fields)


def _stream(specs):
    """Build contiguous events from (kind, fields) pairs."""
    return [_ev(i, kind, t=float(i), **fields)
            for i, (kind, fields) in enumerate(specs)]


def _access_pair(seq0, kind="lookup", messages=0, hops=0, **end_fields):
    """One access span with ``hops`` hop events inside it."""
    events = [_ev(seq0, "access-start", t=float(seq0), strategy="RANDOM",
                  access=kind, origin=0)]
    for i in range(hops):
        events.append(_ev(seq0 + 1 + i, "hop", t=float(seq0 + 1 + i),
                          src=0, dst=i + 1))
    events.append(_ev(seq0 + 1 + hops, "access-end", t=float(seq0 + 1 + hops),
                      strategy="RANDOM", access=kind, origin=0,
                      messages=messages, routing=0, **end_fields))
    return events


# ---------------------------------------------------------------------------
# Subscriber API
# ---------------------------------------------------------------------------


class TestSubscriberApi:
    def test_subscribers_receive_every_event(self):
        trace = EventTrace().enable(memory=False)
        seen = []
        trace.subscribe(seen.append)
        trace.record("hop", 1.0, src=0, dst=1)
        trace.emit("broadcast", 2.0, src=1)
        assert [e.kind for e in seen] == ["hop", "broadcast"]
        assert seen[0].fields["src"] == 0

    def test_unsubscribe_and_double_subscribe(self):
        trace = EventTrace().enable(memory=False)
        seen = []
        trace.subscribe(seen.append)
        trace.subscribe(seen.append)  # idempotent
        trace.record("hop", 1.0)
        trace.unsubscribe(seen.append.__self__.append
                          if hasattr(seen.append, "__self__") else seen.append)
        trace.unsubscribe(seen.append)  # missing: ignored
        trace.record("hop", 2.0)
        assert len(seen) == 1

    def test_subscriber_only_mode_skips_retention(self):
        trace = EventTrace().enable(memory=False)
        trace.subscribe(lambda e: None)
        trace.record("hop", 1.0)
        assert len(trace) == 0  # no memory retention


# ---------------------------------------------------------------------------
# Exception isolation
# ---------------------------------------------------------------------------


class _Crasher(Watcher):
    name = "crasher"

    def on_event(self, event):
        raise RuntimeError("boom")


class _AuditRaiser(Watcher):
    """Simulates strict-mode auditing: its raises are deliberate."""

    name = "audit-raiser"

    def __init__(self, at_finish=False):
        super().__init__()
        self.at_finish = at_finish

    def on_event(self, event):
        if not self.at_finish:
            raise AuditError("deliberate strict raise")

    def finish(self):
        if self.at_finish:
            raise AuditError("deliberate strict raise at finish")


class _Interrupter(Watcher):
    name = "interrupter"

    def on_event(self, event):
        raise KeyboardInterrupt


class TestExceptionIsolation:
    def test_crashing_watcher_never_breaks_the_stream(self):
        hub = WatcherHub([_Crasher(), MonotonicityWatcher()])
        for event in _stream([("hop", {}), ("hop", {})]):
            hub.on_event(event)  # no raise
        assert hub.crashes == 2
        codes = {v.code for v in hub.violations}
        assert codes == {"watcher-crashed"}
        # The healthy watcher kept running (counts fold in at flush).
        hub.finish()
        assert hub.watchers[1].events_seen == 2

    def test_strict_auditor_raises_on_violation(self):
        auditor = AccountingAuditor(strict=True)
        hub = WatcherHub([MonotonicityWatcher()], auditor=auditor)
        hub.on_event(_ev(0, "hop", t=5.0))
        with pytest.raises(AuditError):
            hub.on_event(_ev(1, "hop", t=1.0))  # clock regression

    def test_record_auditor_collects_and_survives(self):
        auditor = AccountingAuditor(strict=False)
        hub = WatcherHub([MonotonicityWatcher()], auditor=auditor)
        hub.on_event(_ev(0, "hop", t=5.0))
        hub.on_event(_ev(1, "hop", t=1.0))
        hub.on_event(_ev(2, "hop", t=6.0))
        assert not hub.clean
        assert auditor.violations[0].code == "monotonicity-clock"

    def test_audit_error_from_handler_propagates(self):
        # Regression: the dispatch isolation must NOT swallow the
        # deliberate strict-audit raise into a watcher-crashed flag.
        hub = WatcherHub([_AuditRaiser(), MonotonicityWatcher()])
        with pytest.raises(AuditError):
            hub.on_event(_ev(0, "hop", t=1.0))
        assert hub.crashes == 0
        assert not any(v.code == "watcher-crashed" for v in hub.violations)

    def test_audit_error_from_finish_propagates(self):
        hub = WatcherHub([_AuditRaiser(at_finish=True)])
        hub.on_event(_ev(0, "hop", t=1.0))
        with pytest.raises(AuditError):
            hub.finish()
        assert hub.crashes == 0

    def test_keyboard_interrupt_propagates(self):
        # BaseException escapes the isolation net entirely — a ^C must
        # stop the run, never be recorded as a crashed watcher.
        hub = WatcherHub([_Interrupter()])
        with pytest.raises(KeyboardInterrupt):
            hub.on_event(_ev(0, "hop", t=1.0))
        assert hub.crashes == 0

    def test_plain_crash_in_finish_still_isolated(self):
        class FinishCrasher(Watcher):
            name = "finish-crasher"

            def finish(self):
                raise RuntimeError("boom at finish")

        hub = WatcherHub([FinishCrasher()])
        hub.finish()  # no raise
        assert hub.crashes == 1
        assert hub.violations[0].code == "watcher-crashed"

    def test_audit_error_propagates_in_every_fused_arity(self):
        # The dispatch fuses 1, 2, and N handlers into different
        # closures; the AuditError re-raise must hold in each shape.
        for extras in (0, 1, 3):
            watchers = [_AuditRaiser()] + [
                MonotonicityWatcher() for _ in range(extras)]
            hub = WatcherHub(watchers)
            with pytest.raises(AuditError):
                hub.on_event(_ev(0, "hop", t=1.0))
            assert hub.crashes == 0

    def test_session_ledger_mirrors_violations(self):
        ledger = []
        hub = WatcherHub([MonotonicityWatcher()], session_ledger=ledger)
        hub.on_event(_ev(0, "hop", t=5.0))
        hub.on_event(_ev(1, "hop", t=1.0))
        assert len(ledger) == 1 and ledger[0].code == "monotonicity-clock"


# ---------------------------------------------------------------------------
# Builtin watchers: clean streams pass, mutated streams fire
# ---------------------------------------------------------------------------


class TestMonotonicityWatcher:
    def test_clean_stream(self):
        w = MonotonicityWatcher()
        for e in _stream([("hop", {}), ("hop", {"topology_version": 1}),
                          ("hop", {"topology_version": 2})]):
            w.on_event(e)
        assert not w.violations

    def test_clock_regression_fires(self):
        w = MonotonicityWatcher()
        w.on_event(_ev(0, "hop", t=5.0))
        w.on_event(_ev(1, "hop", t=4.0))
        assert [v.code for v in w.violations] == ["monotonicity-clock"]

    def test_seq_gap_fires(self):
        w = MonotonicityWatcher()
        w.on_event(_ev(0, "hop"))
        w.on_event(_ev(2, "hop", t=1.0))
        assert [v.code for v in w.violations] == ["monotonicity-seq"]

    def test_topology_regression_fires(self):
        w = MonotonicityWatcher()
        w.on_event(_ev(0, "hop", topology_version=3))
        w.on_event(_ev(1, "hop", t=1.0, topology_version=2))
        assert [v.code for v in w.violations] == ["monotonicity-topology"]


class TestConservationWatcher:
    def test_balanced_access_passes(self):
        w = ConservationWatcher()
        for e in _access_pair(0, messages=2, hops=2, success=True):
            w.on_event(e)
        assert not w.violations and w.accesses_checked == 1

    def test_dropped_accounting_event_fires(self):
        # The seeded mutation: the access claims 3 messages but one hop
        # event was dropped from the stream.
        w = ConservationWatcher()
        events = _access_pair(0, messages=3, hops=2, success=True)
        for e in events:
            w.on_event(e)
        assert [v.code for v in w.violations] == ["conservation-messages"]

    def test_nested_access_accrues_to_inner_frame(self):
        w = ConservationWatcher()
        events = [
            _ev(0, "access-start", strategy="A", access="lookup", origin=0),
            _ev(1, "access-start", t=1.0, strategy="B", access="lookup",
                origin=1),
            _ev(2, "hop", t=2.0),
            _ev(3, "access-end", t=3.0, strategy="B", access="lookup",
                origin=1, messages=1, routing=0),
            _ev(4, "access-end", t=4.0, strategy="A", access="lookup",
                origin=0, messages=0, routing=0),
        ]
        for e in events:
            w.on_event(e)
        assert not w.violations

    def test_unmatched_end_fires(self):
        w = ConservationWatcher()
        w.on_event(_ev(0, "access-end", strategy="A", access="lookup",
                       messages=0, routing=0))
        assert [v.code for v in w.violations] == ["conservation-unmatched-end"]


class TestNoFabricationWatcher:
    def test_stored_then_hit_passes(self):
        w = NoFabricationWatcher()
        w.on_event(_ev(0, "store", node=3, key="k"))
        w.on_event(_ev(1, "probe", t=1.0, node=3, hit=True, key="k"))
        assert not w.violations

    def test_fabricated_probe_hit_fires(self):
        # The seeded mutation: a reply for a key no advertise ever stored.
        w = NoFabricationWatcher()
        w.on_event(_ev(0, "store", node=3, key="real"))
        w.on_event(_ev(1, "probe", t=1.0, node=5, hit=True, key="ghost"))
        assert [v.code for v in w.violations] == ["fabricated-value"]

    def test_found_end_for_never_stored_key_fires(self):
        w = NoFabricationWatcher()
        w.on_event(_ev(0, "access-end", access="lookup", found=True,
                       key="ghost", messages=0, routing=0))
        assert [v.code for v in w.violations] == ["fabricated-value"]

    def test_keyless_events_are_skipped(self):
        # Pre-schema-2 traces carry no key payloads: never fires.
        w = NoFabricationWatcher()
        w.on_event(_ev(0, "probe", node=5, hit=True))
        w.on_event(_ev(1, "access-end", t=1.0, access="lookup", found=True,
                       messages=0, routing=0))
        assert not w.violations


class TestQuorumIntersectionWatcher:
    def _lookup(self, seq0, key, found, quorum):
        return [
            _ev(seq0, "access-start", t=float(seq0), strategy="RANDOM",
                access="lookup", origin=0, key=key),
            _ev(seq0 + 1, "access-end", t=float(seq0 + 1), strategy="RANDOM",
                access="lookup", origin=0, key=key, found=found,
                quorum=quorum, messages=0, routing=0),
        ]

    def test_all_miss_stream_fires(self):
        # n=20, 10 stored copies, lookups reach 10 nodes: p_hit ~ 1.
        # 200 straight misses is statistically impossible under the
        # hypergeometric bound.
        w = QuorumIntersectionWatcher(n=20)
        for node in range(10):
            w.on_event(_ev(node, "store", t=0.0, node=node, key="k"))
        seq = 10
        for _ in range(200):
            for e in self._lookup(seq, "k", found=False, quorum=10):
                w.on_event(e)
            seq += 2
        assert any(v.code == "intersection-below-bound"
                   for v in w.violations)

    def test_plausible_hits_stay_clean(self):
        w = QuorumIntersectionWatcher(n=20)
        for node in range(10):
            w.on_event(_ev(node, "store", t=0.0, node=node, key="k"))
        seq = 10
        for _ in range(200):
            for e in self._lookup(seq, "k", found=True, quorum=10):
                w.on_event(e)
            seq += 2
        assert not w.violations

    def test_disarms_on_non_uniform_advertise(self):
        w = QuorumIntersectionWatcher(n=20)
        w.on_event(_ev(0, "access-start", strategy="UNIQUE-PATH",
                       access="advertise", origin=0))
        assert not w.armed

    def test_dormant_without_n(self):
        w = QuorumIntersectionWatcher(n=None)
        for e in self._lookup(0, "k", found=False, quorum=10):
            w.on_event(e)
        assert w.lookups_counted == 0 and not w.violations

    def test_churn_adjusts_alive_copies(self):
        w = QuorumIntersectionWatcher(n=10)
        w.on_event(_ev(0, "store", node=1, key="k"))
        w.on_event(_ev(1, "churn", t=1.0, action="fail", node=1))
        assert w._alive_copies("k") == 0
        w.on_event(_ev(2, "churn", t=2.0, action="revive", node=1))
        assert w._alive_copies("k") == 1


# ---------------------------------------------------------------------------
# P² quantile estimator
# ---------------------------------------------------------------------------


class TestP2Quantile:
    def test_exact_for_first_five(self):
        p = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            p.observe(v)
        assert p.value() == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.9).value())

    def test_converges_on_uniform(self):
        rng = random.Random(42)
        values = [rng.random() for _ in range(20000)]
        for q in (0.5, 0.9, 0.99):
            est = P2Quantile(q)
            for v in values:
                est.observe(v)
            exact = sorted(values)[int(q * len(values)) - 1]
            assert abs(est.value() - exact) < 0.02, (q, est.value(), exact)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


# ---------------------------------------------------------------------------
# Bounded histograms (satellite: metrics memory)
# ---------------------------------------------------------------------------


class TestBoundedHistogram:
    def test_summary_stats_stay_exact(self):
        h = Histogram("x", bounded=True, capacity=8)
        for v in range(100):
            h.observe(float(v))
        assert h.count == 100
        assert h.sum == sum(range(100))
        assert h.min == 0.0 and h.max == 99.0
        assert len(h.values) == 8  # reservoir bound holds

    def test_deterministic_reservoir(self):
        def fill(name):
            h = Histogram(name, bounded=True, capacity=16)
            for v in range(1000):
                h.observe(float(v))
            return list(h.values)
        assert fill("same") == fill("same")

    def test_percentile_approximates(self):
        h = Histogram("x", bounded=True, capacity=512)
        rng = random.Random(7)
        values = [rng.random() for _ in range(5000)]
        for v in values:
            h.observe(v)
        exact = sorted(values)[int(0.5 * len(values)) - 1]
        assert abs(h.percentile(50) - exact) < 0.1

    def test_default_mode_unchanged(self):
        h = Histogram("x")
        for v in (3.0, 1.0, 2.0):
            h.observe(v)
        assert not h.bounded
        assert h.values == [3.0, 1.0, 2.0]  # raw retention
        assert h.percentile(50) == 2.0
        assert h.count == 3 and h.sum == 6.0

    def test_sorted_cache_invalidated_by_observe(self):
        h = Histogram("x")
        h.observe(2.0)
        assert h.percentile(100) == 2.0  # populates cache
        h.observe(9.0)
        assert h.percentile(100) == 9.0  # cache was invalidated

    def test_registry_env_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_HIST_CAPACITY", "32")
        reg = MetricsRegistry()
        assert reg.histogram("h").bounded
        monkeypatch.delenv("REPRO_HIST_CAPACITY")
        assert not MetricsRegistry().histogram("h").bounded

    def test_registry_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            MetricsRegistry(bounded_capacity=0)


# ---------------------------------------------------------------------------
# SLO monitor
# ---------------------------------------------------------------------------


class TestSloMonitor:
    def _lookup_pair(self, seq0, latency, found=True):
        return [
            _ev(seq0, "access-start", t=float(seq0), strategy="R",
                access="lookup", origin=0),
            _ev(seq0 + 1, "access-end", t=seq0 + latency, strategy="R",
                access="lookup", origin=0, found=found, messages=4,
                routing=0, quorum=5),
        ]

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SloSpec(metric="x")  # no bound
        with pytest.raises(ValueError):
            SloSpec(metric="x", p=101, max=1.0)
        with pytest.raises(ValueError):
            SloSpec(metric="x", max=1.0, window=0)
        with pytest.raises(ValueError):
            load_slo_specs('[{"metric": "x", "max": 1, "typo": 2}]')

    def test_load_from_file_and_wrapper(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text('{"slos": [{"metric": "m", "max": 1.0}]}')
        specs = load_slo_specs(str(path))
        assert specs[0].metric == "m" and specs[0].p is None

    def test_window_breach_fires(self):
        mon = SloMonitor([SloSpec(metric="lookup.latency", max=0.5,
                                  window=2)])
        seq = 0
        for latency in (1.0, 2.0):  # both above max; window of 2 closes
            for e in self._lookup_pair(seq, latency):
                mon.on_event(e)
            seq += 2
        assert [v.code for v in mon.violations] == ["slo-violation"]
        report = mon.slo_report()
        assert report["violations"] == 1 and not report["ok"]
        assert report["slos"][0]["windows"][0]["partial"] is False

    def test_partial_window_evaluated_at_finish(self):
        mon = SloMonitor([SloSpec(metric="lookup.hit_rate", min=0.9,
                                  window=100)])
        for e in self._lookup_pair(0, 0.1, found=False):
            mon.on_event(e)
        assert not mon.violations
        mon.finish()
        assert [v.code for v in mon.violations] == ["slo-violation"]
        assert mon.slo_report()["slos"][0]["windows"][0]["partial"] is True

    def test_percentile_spec_uses_p2(self):
        mon = SloMonitor([SloSpec(metric="lookup.latency", p=99, max=5.0,
                                  window=50)])
        seq = 0
        for _ in range(50):
            for e in self._lookup_pair(seq, 0.5):
                mon.on_event(e)
            seq += 2
        assert not mon.violations
        report = mon.slo_report()
        assert report["slos"][0]["windows"][0]["value"] == pytest.approx(
            0.5, abs=1e-9)

    def test_derived_field_metrics(self):
        mon = SloMonitor([SloSpec(metric="lookup.messages", max=3.0,
                                  window=1),
                          SloSpec(metric="lookup.quorum_size", max=10.0,
                                  window=1)])
        for e in self._lookup_pair(0, 0.1):
            mon.on_event(e)
        # messages=4 > 3 fires; quorum=5 <= 10 passes.
        assert len(mon.violations) == 1
        assert "lookup.messages" in mon.violations[0].message


# ---------------------------------------------------------------------------
# Live attachment + campaigns (integration)
# ---------------------------------------------------------------------------


class TestLiveAttachment:
    def test_attach_watchers_wires_trace_and_auditor(self):
        net = SimNetwork(NetworkConfig(n=30, seed=3))
        hub = attach_watchers(net)
        assert net.watch_hub is hub
        assert net.trace.enabled
        net.record_event("hop", src=0, dst=1)
        hub.finish()  # event counts fold in at flush
        assert hub.events_seen == 1

    def test_env_hook_attaches(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCH", "monotonicity,conservation")
        net = SimNetwork(NetworkConfig(n=30, seed=3))
        assert net.watch_hub is not None
        assert {w.name for w in net.watch_hub.watchers} == {
            "monotonicity", "conservation"}

    def test_env_hook_rejects_typos(self, monkeypatch):
        monkeypatch.setenv("REPRO_WATCH", "monotonicty")
        with pytest.raises(ValueError):
            SimNetwork(NetworkConfig(n=30, seed=3))

    def test_builtin_watchers_names(self):
        assert {w.name for w in builtin_watchers(n=10)} == {
            "monotonicity", "conservation", "no-fabricated-value",
            "quorum-intersection"}
        with pytest.raises(ValueError):
            builtin_watchers(names=["nope"])

    @pytest.mark.parametrize("campaign", ["smoke", "waves", "join-surge",
                                          "partition", "stress"])
    def test_campaigns_clean_under_all_watchers(self, campaign):
        report = run_fault_campaign(campaign=campaign, n=60, seed=7,
                                    n_lookups=20, watch=True)
        assert report.watch_clean, report.watch_violations
        assert report.watch["events"] > 0

    def test_campaign_slo_breach_reported(self):
        # An impossible SLO (zero latency) must be reported, not raised.
        report = run_fault_campaign(
            campaign="smoke", n=60, seed=7, n_lookups=10,
            slo_specs=[SloSpec(metric="lookup.latency", max=0.0, window=5)])
        assert report.watch_clean is False
        assert any(v.code == "slo-violation"
                   for v in report.watch_violations)


# ---------------------------------------------------------------------------
# Trace replay + golden trace
# ---------------------------------------------------------------------------


class TestReplay:
    def test_golden_trace_is_clean(self):
        result = replay_trace(GOLDEN_TRACE)
        assert result.clean, result.violations
        assert result.events > 0 and result.segments > 1
        assert result.corrupt_lines == 0

    def test_segment_reset_between_runs(self):
        # Two back-to-back runs: clocks restart — must NOT trip
        # monotonicity because seq==0 starts a fresh segment.
        lines = []
        for _run in range(2):
            for e in _stream([("hop", {}), ("hop", {})]):
                lines.append(e.to_json())
        result = replay_trace(lines)
        assert result.segments == 2 and result.clean

    def test_mutated_trace_fires_on_replay(self):
        lines = [e.to_json()
                 for e in _access_pair(0, messages=9, hops=2, success=True)]
        result = replay_trace(lines)
        assert not result.clean
        assert any("conservation-messages" in v for v in
                   result.to_jsonable()["violations"])

    def test_corrupt_lines_counted(self):
        lines = ["not json", _ev(0, "hop").to_json()]
        result = replay_trace(lines)
        assert result.corrupt_lines == 1 and result.events == 1


# ---------------------------------------------------------------------------
# CLI + schema stamping
# ---------------------------------------------------------------------------


class TestWatchCli:
    def _write_trace(self, tmp_path, events, name="t.jsonl"):
        path = tmp_path / name
        path.write_text("\n".join(e.to_json() for e in events) + "\n")
        return str(path)

    def test_watch_clean_and_verdict_report(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_trace(
            tmp_path, _access_pair(0, messages=1, hops=1, success=True))
        assert main(["obs", "watch", path, "--fail-on-violation"]) == 0
        verdict = json.loads(open(path + ".verdict.json").read())
        assert verdict["ok"] is True and verdict["events"] == 3

    def test_watch_violation_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_trace(
            tmp_path, _access_pair(0, messages=9, hops=1, success=True))
        assert main(["obs", "watch", path]) == 0  # report-only
        assert main(["obs", "watch", path, "--fail-on-violation"]) == 1
        out = capsys.readouterr().out
        assert "conservation-messages" in out

    def test_watch_golden_trace_cli(self, capsys):
        from repro.cli import main

        assert main(["obs", "watch", GOLDEN_TRACE, "--fail-on-violation",
                     "--report", "none"]) == 0
        assert "no violations" in capsys.readouterr().out

    def test_watch_with_slo_spec(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "slo.json"
        spec.write_text('[{"metric": "lookup.latency", "max": 0.0}]')
        path = self._write_trace(
            tmp_path, _access_pair(0, kind="lookup", messages=1, hops=1,
                                   success=True, found=True, quorum=1))
        assert main(["obs", "watch", path, "--slo", str(spec),
                     "--fail-on-violation"]) == 1
        verdict = json.loads(open(path + ".verdict.json").read())
        assert verdict["slo"][0]["violations"] == 1

    def test_watch_bad_slo_spec_is_a_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        spec = tmp_path / "bad.json"
        spec.write_text('[{"metric": "x"}]')
        path = self._write_trace(tmp_path, [_ev(0, "hop")])
        assert main(["obs", "watch", path, "--slo", str(spec)]) == 2

    def test_summarize_stdin(self, tmp_path, capsys, monkeypatch):
        import io

        from repro.cli import main

        lines = "\n".join(
            e.to_json()
            for e in _access_pair(0, messages=1, hops=1, success=True)) + "\n"
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        assert main(["obs", "summarize", "-"]) == 0
        assert "access.lookup" in capsys.readouterr().out

    def test_faults_run_watch_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_TRACE", "sentinel")  # restored by CLI
        trace = str(tmp_path / "c.jsonl")
        assert main(["faults", "run", "--campaign", "smoke", "--n", "60",
                     "--lookups", "10", "--watch", "--fail-on-violation",
                     "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "watch:" in out and "CLEAN" in out
        verdict = json.loads(open(trace + ".verdict.json").read())
        assert verdict["ok"] is True

    def test_list_documents_watch(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for token in ("watch", "REPRO_WATCH", "REPRO_SLO",
                      "REPRO_HIST_CAPACITY"):
            assert token in out


class TestSchemaStamp:
    def test_manifest_carries_trace_schema(self):
        manifest = collect_manifest("fig8", params={"n": 25})
        assert manifest.schema == MANIFEST_SCHEMA
        assert manifest.trace_schema == TRACE_SCHEMA

    def test_obs_warns_on_schema_mismatch(self, tmp_path, capsys):
        from repro.obs.query import check_trace_schema

        trace = tmp_path / "old.jsonl"
        trace.write_text(_ev(0, "hop").to_json() + "\n")
        (tmp_path / "old.jsonl.manifest.json").write_text(
            json.dumps({"schema": 1}))  # pre-stamp manifest: schema 1
        assert check_trace_schema(str(trace)) == 1
        assert "warning" in capsys.readouterr().err

    def test_obs_silent_on_match_or_missing(self, tmp_path, capsys):
        from repro.obs.query import check_trace_schema

        trace = tmp_path / "new.jsonl"
        trace.write_text(_ev(0, "hop").to_json() + "\n")
        assert check_trace_schema(str(trace)) is None  # no manifest
        (tmp_path / "new.jsonl.manifest.json").write_text(
            json.dumps({"trace_schema": TRACE_SCHEMA}))
        assert check_trace_schema(str(trace)) == TRACE_SCHEMA
        assert capsys.readouterr().err == ""
