"""Tests for the five quorum access strategies."""

import math
import random

import pytest

from repro.core import (
    FloodingStrategy,
    PathStrategy,
    RandomOptStrategy,
    RandomSamplingStrategy,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.membership import FullMembership, RandomMembership
from repro.simnet import NetworkConfig, SimNetwork


def make_net(n=100, seed=0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


def store_recorder():
    stored = []
    return stored, stored.append


def probe_for(targets, value="v"):
    hit_set = set(targets)

    def probe(node):
        return value if node in hit_set else None

    return probe


class TestRandomStrategy:
    def test_advertise_reaches_target_size(self):
        net = make_net()
        strategy = RandomStrategy(FullMembership(net))
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=15)
        assert result.success
        assert result.quorum_size == 15
        assert sorted(stored) == result.quorum

    def test_advertise_quorum_is_distinct_and_excludes_origin(self):
        net = make_net()
        strategy = RandomStrategy(FullMembership(net))
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=20)
        assert len(set(result.quorum)) == 20
        assert 0 not in result.quorum

    def test_advertise_counts_route_messages(self):
        net = make_net()
        strategy = RandomStrategy(FullMembership(net))
        _, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=10)
        # Multi-hop: strictly more messages than quorum members.
        assert result.messages > 10
        assert result.routing_messages > 0

    def test_adaptation_replaces_dead_members(self):
        net = make_net(seed=1)
        membership = FullMembership(net)
        # Kill 20 nodes but leave the membership view stale.
        victims = [v for v in range(1, 40) if net.is_alive(v)][:20]
        for v in victims:
            net.fail_node(v)
        strategy = RandomStrategy(membership, adaptation_retries=3)
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=15)
        assert all(net.is_alive(v) for v in result.quorum)
        assert result.quorum_size >= 10  # adaptation mostly compensates

    def test_lookup_finds_advertised_data(self):
        net = make_net()
        strategy = RandomStrategy(FullMembership(net))
        _, store = store_recorder()
        adv = strategy.advertise(net, 0, store, target_size=25)
        result = strategy.lookup(net, 50, probe_for(adv.quorum),
                                 target_size=25)
        assert result.found
        assert result.hit_node in adv.quorum
        assert result.hit_value == "v"
        assert result.reply_delivered

    def test_lookup_miss_completes_access(self):
        net = make_net()
        strategy = RandomStrategy(FullMembership(net))
        result = strategy.lookup(net, 0, probe_for([]), target_size=10)
        assert not result.found
        assert result.success  # full quorum accessed
        assert result.quorum_size == 10

    def test_serial_lookup_halts_after_hit(self):
        net = make_net()
        strategy = RandomStrategy(FullMembership(net), serial_lookup=True,
                                  rng=random.Random(5))
        all_nodes = set(net.alive_nodes()) - {0}
        result = strategy.lookup(net, 0, probe_for(all_nodes),
                                 target_size=20)
        assert result.found
        assert result.quorum_size == 1  # halted on first contact

    def test_works_with_random_membership(self):
        net = make_net()
        strategy = RandomStrategy(RandomMembership(net))
        _, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=10)
        assert result.quorum_size == 10


class TestRandomSamplingStrategy:
    def test_advertise_without_membership_or_routing(self):
        net = make_net(n=60, seed=2)
        strategy = RandomSamplingStrategy(walk_length=30)
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=6)
        assert result.quorum_size >= 5  # occasional dropped walks tolerated
        assert result.routing_messages == 0

    def test_costs_scale_with_mixing_time(self):
        net = make_net(n=60, seed=2)
        strategy = RandomSamplingStrategy(walk_length=30)
        _, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=6)
        # ~|Q| * T_mix transmissions, way above |Q|.
        assert result.messages >= 6 * 15

    def test_lookup_reply_over_walk_reverse_path(self):
        net = make_net(n=60, seed=2)
        strategy = RandomSamplingStrategy(walk_length=30)
        all_nodes = set(net.alive_nodes()) - {0}
        result = strategy.lookup(net, 0, probe_for(all_nodes), target_size=4)
        assert result.found
        assert result.reply_delivered


class TestPathStrategies:
    def test_advertise_stores_along_walk(self):
        net = make_net()
        strategy = PathStrategy()
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=12)
        assert result.success
        assert result.quorum_size == 12
        assert 0 in result.quorum  # walk includes the originator

    def test_unique_path_cheaper_than_simple(self):
        net = make_net(seed=3)
        simple = PathStrategy(rng=random.Random(1))
        uniq = UniquePathStrategy(rng=random.Random(1))
        _, store = store_recorder()
        cost_simple = sum(
            simple.advertise(net, v, store, 25).messages for v in range(5))
        cost_unique = sum(
            uniq.advertise(net, v, store, 25).messages for v in range(5))
        assert cost_unique <= cost_simple

    def test_strategy_names(self):
        assert PathStrategy().name == "PATH"
        assert PathStrategy(unique=True).name == "UNIQUE-PATH"
        assert UniquePathStrategy().name == "UNIQUE-PATH"

    def test_lookup_early_halt_on_hit(self):
        net = make_net()
        advertise_nodes = set(net.alive_nodes())  # datum everywhere
        strategy = UniquePathStrategy(rng=random.Random(2))
        result = strategy.lookup(net, 0, probe_for(advertise_nodes),
                                 target_size=30)
        assert result.found
        assert result.quorum_size == 1  # halted at the origin itself

    def test_lookup_counts_reply_messages(self):
        net = make_net(seed=4)
        # Advertise at a specific remote set.
        strategy = UniquePathStrategy(rng=random.Random(7))
        walk_probe_targets = set(net.alive_nodes()[40:60]) - {0}
        result = strategy.lookup(net, 0, probe_for(walk_probe_targets),
                                 target_size=40)
        if result.found and result.hit_node != 0:
            assert result.reply_delivered
            assert result.messages > result.quorum_size - 1  # walk + reply

    def test_no_early_halting_visits_full_quorum(self):
        net = make_net()
        strategy = UniquePathStrategy(early_halting=False,
                                      rng=random.Random(2))
        result = strategy.lookup(net, 0, probe_for(set(net.alive_nodes())),
                                 target_size=15)
        assert result.found
        assert result.quorum_size == 15

    def test_miss_traverses_full_quorum(self):
        net = make_net()
        strategy = UniquePathStrategy(rng=random.Random(2))
        result = strategy.lookup(net, 0, probe_for([]), target_size=15)
        assert not result.found
        assert result.success
        assert result.quorum_size == 15


class TestFloodingStrategy:
    def test_fixed_ttl_advertise(self):
        net = make_net()
        strategy = FloodingStrategy(ttl=2)
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=10)
        assert set(stored) == set(result.quorum)
        assert 0 in result.quorum

    def test_analytic_ttl_reaches_target(self):
        net = make_net()
        strategy = FloodingStrategy()
        _, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=20)
        assert result.quorum_size >= 15  # analytic model approximate

    def test_expanding_ring_reaches_target(self):
        net = make_net()
        strategy = FloodingStrategy(expanding_ring=True)
        _, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=20)
        assert result.success

    def test_expanding_ring_costlier_than_direct(self):
        net = make_net()
        _, store = store_recorder()
        direct = FloodingStrategy().advertise(net, 0, store, target_size=20)
        ring = FloodingStrategy(expanding_ring=True).advertise(
            net, 0, store, target_size=20)
        assert ring.messages > direct.messages

    def test_lookup_hit_with_reply(self):
        net = make_net()
        strategy = FloodingStrategy(ttl=2)
        covered_probe = probe_for(set(net.alive_nodes()) - {0})
        result = strategy.lookup(net, 0, covered_probe, target_size=10)
        assert result.found
        assert result.reply_delivered

    def test_lookup_sends_multiple_replies(self):
        net = make_net()
        flood_only = FloodingStrategy(ttl=2).advertise(
            net, 0, lambda v: None, target_size=1)
        hits = set(flood_only.quorum) - {0}
        result = FloodingStrategy(ttl=2).lookup(
            net, 0, probe_for(hits), target_size=1)
        # Every covered hit node replies: messages exceed the flood cost.
        assert result.messages > flood_only.messages


class TestRandomOptStrategy:
    def test_lookup_probes_en_route(self):
        net = make_net()
        strategy = RandomOptStrategy(FullMembership(net), initiations=3)
        result = strategy.lookup(net, 0, probe_for([]), target_size=10)
        # 3 initiations over multi-hop routes probe more than 3 nodes.
        assert result.quorum_size > 3

    def test_lookup_hit_halts_forwarding(self):
        net = make_net()
        strategy = RandomOptStrategy(FullMembership(net), initiations=1,
                                     rng=random.Random(3))
        everywhere = set(net.alive_nodes()) - {0}
        result = strategy.lookup(net, 0, probe_for(everywhere),
                                 target_size=10)
        assert result.found
        # The hit is at the first en-route hop.
        assert result.quorum_size <= 3

    def test_origin_in_lookup_quorum(self):
        net = make_net()
        strategy = RandomOptStrategy(FullMembership(net), initiations=1)
        result = strategy.lookup(net, 0, probe_for([0]), target_size=10)
        assert result.found and result.hit_node == 0

    def test_advertise_stores_en_route(self):
        net = make_net()
        strategy = RandomOptStrategy(FullMembership(net), initiations=4)
        stored, store = store_recorder()
        result = strategy.advertise(net, 0, store, target_size=8)
        assert result.quorum_size >= 8
        assert set(stored) == set(result.quorum)

    def test_default_initiations_is_ln_n(self):
        net = make_net(n=100)
        strategy = RandomOptStrategy(FullMembership(net))
        assert strategy.default_initiations(net) == round(math.log(100))

    def test_not_uniform_random(self):
        assert not RandomOptStrategy(None).uniform_random
        assert RandomStrategy(None).uniform_random
