"""Simulator integration of the algebraic quorum layer.

Covers the PR's acceptance criteria: :class:`AlgebraicStrategy` is
statistic-identical across the batched and sequential access backends,
runs clean under ``REPRO_AUDIT=strict``, and — the headline cross-check —
the optimizer-predicted per-node load matches the simulated load (from
the metrics registry) within the Monte-Carlo CI at R=16 on both the
majority and 3x3 grid systems.  Plus the bugfix satellites: skipped
replicas leave an audit trail instead of vanishing, strict-audit errors
always propagate out of ``run_replicated``, and trace close failures
during GC are counted, not swallowed.
"""

import dataclasses
import math
import random

import pytest

from repro.experiments.common import run_scenario, scenario_config
from repro.experiments.fig_quorum import quorum_load_point, quorum_load_sweep
from repro.experiments.montecarlo import (
    WORKLOAD_STREAMS,
    run_replicated,
    scenario_stats_equal,
)
from repro.obs import trace as trace_mod
from repro.obs.audit import AuditError
from repro.quorum import (
    AlgebraicStrategy,
    Node,
    QuorumSystem,
    build_system,
    majority_system,
    measured_node_loads,
    placement_for,
    solve_strategy,
)
from repro.simnet.network import NetworkConfig, SimNetwork


def _drive(net, strategy, seed=11, ops=12):
    """A deterministic advertise/lookup script; returns all results."""
    rng = random.Random(seed)
    stored = set()
    results = []
    for i in range(ops):
        origin = net.random_alive_node(rng)
        if i % 2 == 0:
            results.append(strategy.advertise(net, origin, stored.add, 0))
        else:
            results.append(strategy.lookup(
                net, origin, lambda v: v if v in stored else None, 0))
    return results


class TestBackendEquality:
    def test_batched_and_sequential_results_identical(self):
        qs = majority_system(range(5))
        sigma = solve_strategy(qs)
        observed = []
        for backend in ("sequential", "batched"):
            net = SimNetwork(NetworkConfig(n=50, seed=4,
                                           access_backend=backend))
            results = _drive(net, AlgebraicStrategy(qs, strategy=sigma))
            observed.append([dataclasses.asdict(r) for r in results])
        assert observed[0] == observed[1]

    def test_scenario_stats_identical_across_backends(self):
        qs = build_system("grid", range(9))
        sigma = solve_strategy(qs)
        stats = []
        for backend in ("sequential", "batched"):
            net = SimNetwork(NetworkConfig(n=50, seed=4,
                                           access_backend=backend))
            strategy = AlgebraicStrategy(qs, strategy=sigma)
            stats.append(run_scenario(
                net, advertise_strategy=strategy, lookup_strategy=strategy,
                advertise_size=0, lookup_size=0, n_keys=5, n_lookups=15,
                seed=9))
        assert scenario_stats_equal(stats[0], stats[1])


class TestStrictAudit:
    def test_algebraic_access_is_audit_clean(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "strict")
        net = SimNetwork(NetworkConfig(n=40, seed=6))
        qs = majority_system(range(5))
        results = _drive(net, AlgebraicStrategy(qs, strategy=qs.strategy()))
        assert net.auditor is not None
        assert net.auditor.checked == len(results)
        assert net.auditor.violations == []
        assert any(r.success for r in results)

    def test_intersecting_quorums_always_hit_on_static_network(self):
        net = SimNetwork(NetworkConfig(n=40, seed=6))
        qs = majority_system(range(5))
        strategy = AlgebraicStrategy(qs, strategy=qs.strategy())
        stats = run_scenario(
            net, advertise_strategy=strategy, lookup_strategy=strategy,
            advertise_size=0, lookup_size=0, n_keys=6, n_lookups=20, seed=2)
        assert stats.hit_ratio == 1.0


class TestLoadCrossCheck:
    """Acceptance: predicted load == simulated load within CI at R=16."""

    @pytest.mark.parametrize("system,m,expected_load", [
        ("majority", 5, 0.6),
        ("grid", 9, 1 / 3),
    ])
    def test_predicted_matches_simulated_at_r16(self, system, m,
                                                expected_load):
        point = quorum_load_point(system, 0.5, n=40, m=m, reps=16,
                                  ops=60, seed=0)
        assert point.reps == 16
        assert point.predicted_load == pytest.approx(expected_load,
                                                     abs=1e-6)
        assert point.within_ci, (
            f"simulated load {point.node_loads_simulated} deviates from "
            f"prediction {point.node_loads_predicted} beyond the CI")
        assert point.max_gap < 0.1
        assert point.hit_ratio == 1.0

    def test_replicas_see_distinct_quorum_draws(self):
        assert "algebra-strategy" in WORKLOAD_STREAMS
        point = quorum_load_point("majority", 0.5, n=30, m=5, reps=4,
                                  ops=40, seed=3)
        # Reseeded workload streams => across-replica variance is real,
        # so the CI half-width cannot collapse to ~0.
        assert point.simulated_load_hw > 0.005


class TestDegenerateInputs:
    def test_all_faulted_yields_nan_row(self):
        point = quorum_load_point("majority", 0.5, n=25, m=3, reps=2,
                                  ops=10, seed=1, faulty={0, 1, 2})
        assert not point.feasible
        assert point.reps == 0
        assert math.isnan(point.predicted_load)
        assert math.isnan(point.simulated_load)

    def test_one_sided_read_fractions_run(self):
        for fr in (0.0, 1.0):
            point = quorum_load_point("majority", fr, n=25, m=3, reps=2,
                                      ops=10, seed=1)
            assert point.feasible
            assert not math.isnan(point.simulated_load)
            assert math.isnan(point.hit_ratio)  # no present lookups

    def test_sweep_renders_all_points(self):
        points = quorum_load_sweep(systems=("chain",),
                                   read_fractions=(0.5,), n=25, m=4,
                                   reps=2, ops=10, seed=1)
        assert len(points) == 1
        assert points[0].feasible


class TestPlacementAndMetrics:
    def test_measured_loads_empty_without_accesses(self):
        net = SimNetwork(NetworkConfig(n=20, seed=1))
        assert measured_node_loads(net) == {}

    def test_placement_maps_symbolic_elements(self):
        qs = QuorumSystem(reads=Node("a") * Node("b") + Node("c"))
        net = SimNetwork(NetworkConfig(n=20, seed=1))
        placement = placement_for(qs, net)
        assert sorted(placement) == ["a", "b", "c"]
        assert sorted(placement.values()) == [0, 1, 2]
        strategy = AlgebraicStrategy(qs, placement=placement)
        results = _drive(net, strategy, ops=4)
        assert all(r.quorum is not None for r in results)

    def test_placement_rejects_oversized_system(self):
        from repro.quorum import Or

        qs = QuorumSystem(reads=Or([Node(i) for i in range(25)]))
        net = SimNetwork(NetworkConfig(n=20, seed=1))
        with pytest.raises(ValueError, match="needs 25 nodes"):
            placement_for(qs, net)


class TestReplicaFaultRouting:
    """The montecarlo bugfix: skipped replicas leave an audit trail."""

    def test_audit_error_propagates_even_under_skip(self):
        def bad(net, rep_seed):
            raise AuditError("strict accounting violation")

        with pytest.raises(AuditError):
            run_replicated(scenario_config(30, seed=1), bad, reps=2,
                           backend="sequential", base_seed=1,
                           on_error="skip")

    def test_unexpected_exception_types_propagate_under_skip(self):
        def bad(net, rep_seed):
            raise TypeError("coding bug, not workload noise")

        with pytest.raises(TypeError):
            run_replicated(scenario_config(30, seed=1), bad, reps=2,
                           backend="sequential", base_seed=1,
                           on_error="skip")

    def test_skipped_replica_is_recorded_on_all_channels(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUDIT", "record")
        seen = []

        def flaky(net, rep_seed):
            seen.append(net)
            raise RuntimeError("replica fault")

        outcome = run_replicated(scenario_config(30, seed=1), flaky,
                                 reps=1, backend="sequential", base_seed=1,
                                 on_error="skip")
        assert outcome.faulted == 1
        net = seen[0]
        assert net.metrics.counter_value("replication.faulted") == 1
        assert [v.code for v in net.auditor.violations] == ["replica-fault"]
        assert any(e.kind == "replica-fault"
                   for e in net.trace.events_since(0))


class TestTraceCloseSafetyNet:
    def test_close_failures_are_counted_not_lost(self, monkeypatch):
        trace = trace_mod.EventTrace()

        def boom():
            raise OSError("fd already closed")

        monkeypatch.setattr(trace, "close", boom)
        before = trace_mod.close_failures()
        trace.__del__()
        assert trace_mod.close_failures() == before + 1


class TestQuorumCli:
    def test_repro_quorum_smoke(self, capsys):
        from repro.cli import main

        code = main(["quorum", "--n", "25", "--reps", "2",
                     "--lookups", "16", "--quorum-nodes", "4",
                     "--systems", "majority", "chain",
                     "--read-fractions", "0.5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "majority" in out and "chain" in out
        assert "read fraction" in out  # the ascii chart rendered
