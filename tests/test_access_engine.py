"""Backend-equivalence suite for the batched access engine.

The contract under test (DESIGN.md §11): ``access_backend="batched"``
is **statistic-identical** to ``"sequential"`` — same
:class:`AccessResult` fields, same trace events, same counters, same
energy, same simulated clock — across every strategy, under churn,
fault campaigns, mobility, random drops, tracing, and strict audit.
Plus the CSR snapshot staleness guard (a stale topology version can
never be served), the numpy BFS kernel's exactness, the Philox walk
kernel, and the adaptation-exhaustion satellite.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.access_engine import (
    AccessEngine,
    SharedAccessState,
    default_access_backend,
    walk_batch,
)
from repro.core.gossip import GossipFloodStrategy
from repro.core.strategies import (
    FloodingStrategy,
    PathStrategy,
    RandomOptStrategy,
    RandomSamplingStrategy,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.experiments.common import make_membership
from repro.geometry.csr import CsrCache, build_known_csr, build_true_csr
from repro.simnet.network import NetworkConfig, SimNetwork
from repro.simnet.replication import bfs_tree


def _pair(n=80, seed=3, **kw):
    """Two identically-seeded networks differing only in access backend."""
    seq = SimNetwork(NetworkConfig(n=n, seed=seed,
                                   access_backend="sequential", **kw))
    bat = SimNetwork(NetworkConfig(n=n, seed=seed,
                                   access_backend="batched", **kw))
    return seq, bat


def _drive(net, make_strategy, script, trace=False):
    """Run an access script against one network; return full observables."""
    if trace:
        net.trace.enable(memory=True)
    strategy = make_strategy(net)
    stored = set()
    results = []
    for step in script:
        if step[0] == "advertise":
            _, origin, size = step
            r = strategy.advertise(net, origin, stored.add, size)
        elif step[0] == "lookup":
            _, origin, size = step
            r = strategy.lookup(
                net, origin,
                lambda v: v if v in stored else None, size)
        elif step[0] == "fail":
            net.fail_node(step[1])
            continue
        elif step[0] == "fail-tentative":
            net.fail_node(step[1], commit=False)
            continue
        elif step[0] == "commit":
            net.commit_failure(step[1])
            continue
        elif step[0] == "revive":
            net.revive_node(step[1])
            continue
        elif step[0] == "join":
            net.join_node()
            continue
        elif step[0] == "advance":
            net.advance(step[1])
            continue
        else:  # pragma: no cover - script typo guard
            raise ValueError(step)
        results.append(dataclasses.asdict(r))
    observables = {
        "results": results,
        "now": net.sim.now,
        "counters": dict(net.counters),
        "energy": net.energy.total,
        "metrics": net.metrics.snapshot(),
    }
    if net.trace.enabled:
        observables["events"] = list(net.trace.events())
    return observables


def _assert_identical(make_strategy, script, trace=False, **net_kw):
    seq, bat = _pair(**net_kw)
    obs_seq = _drive(seq, make_strategy, script, trace=trace)
    obs_bat = _drive(bat, make_strategy, script, trace=trace)
    assert obs_seq == obs_bat


BASIC_SCRIPT = [
    ("advertise", 0, 14), ("lookup", 7, 11), ("lookup", 19, 11),
    ("advertise", 3, 14), ("lookup", 0, 11),
]

CHURN_SCRIPT = [
    ("advertise", 0, 14), ("fail", 9), ("fail", 21), ("lookup", 7, 11),
    ("fail-tentative", 30), ("lookup", 3, 11), ("revive", 30),
    ("commit", 30), ("join",), ("advance", 10.5), ("advertise", 5, 14),
    ("fail", 2), ("lookup", 11, 11),
]


# -- statistic-identity across strategies ------------------------------------


def test_random_strategy_identical():
    _assert_identical(lambda net: RandomStrategy(
        make_membership(net, "random")), BASIC_SCRIPT)


def test_random_strategy_identical_under_churn():
    _assert_identical(lambda net: RandomStrategy(
        make_membership(net, "random")), CHURN_SCRIPT)


def test_random_strategy_identical_traced():
    _assert_identical(lambda net: RandomStrategy(
        make_membership(net, "random")), CHURN_SCRIPT, trace=True)


def test_random_opt_identical():
    _assert_identical(lambda net: RandomOptStrategy(
        make_membership(net, "full")), CHURN_SCRIPT)


def test_sampling_strategy_identical():
    _assert_identical(lambda net: RandomSamplingStrategy(walk_length=30),
                      BASIC_SCRIPT)


def test_path_strategy_identical_under_churn():
    _assert_identical(lambda net: PathStrategy(), CHURN_SCRIPT)


def test_unique_path_identical():
    _assert_identical(lambda net: UniquePathStrategy(local_repair=True),
                      CHURN_SCRIPT)


@pytest.mark.parametrize("kwargs", [
    {},                      # analytic TTL
    {"expanding_ring": True},
    {"ttl": 3},              # fixed TTL (Figure 11 mode)
])
def test_flooding_identical_under_churn(kwargs):
    _assert_identical(lambda net: FloodingStrategy(**kwargs), CHURN_SCRIPT)


def test_gossip_flood_identical():
    _assert_identical(lambda net: GossipFloodStrategy(), CHURN_SCRIPT)


def test_flooding_identical_traced():
    _assert_identical(lambda net: FloodingStrategy(), BASIC_SCRIPT,
                      trace=True)


def test_identical_with_random_drops():
    # drop_prob > 0 forces the sequential path in every kernel; the two
    # backends must still agree draw for draw (same "drops" stream).
    _assert_identical(lambda net: PathStrategy(), BASIC_SCRIPT,
                      drop_prob=0.1)
    _assert_identical(lambda net: FloodingStrategy(), BASIC_SCRIPT,
                      drop_prob=0.1)


def test_identical_under_waypoint_mobility():
    _assert_identical(lambda net: PathStrategy(local_repair=True),
                      BASIC_SCRIPT, mobility="waypoint",
                      require_connected=False)
    _assert_identical(lambda net: FloodingStrategy(),
                      BASIC_SCRIPT, mobility="waypoint",
                      require_connected=False)


def test_identical_under_strict_audit(monkeypatch):
    # The auditor cross-checks every AccessResult against the traced
    # event stream; the batched backend must keep that ledger balanced.
    monkeypatch.setenv("REPRO_AUDIT", "strict")
    _assert_identical(lambda net: FloodingStrategy(), BASIC_SCRIPT)
    _assert_identical(lambda net: RandomStrategy(
        make_membership(net, "random")), BASIC_SCRIPT)
    _assert_identical(lambda net: PathStrategy(), CHURN_SCRIPT)


def test_flood_outcome_identical_mid_heartbeat():
    # Floods whose broadcast window straddles a heartbeat must fall back
    # round by round and still agree exactly.
    seq, bat = _pair()
    for net in (seq, bat):
        net.advance(net.config.heartbeat_interval
                    - 3 * net.config.hop_latency)
    fa = seq.flood(0, 30)
    fb = bat.flood(0, 30)
    assert fa.covered == fb.covered
    assert list(fa.covered) == list(fb.covered)  # discovery order too
    assert fa.parent == fb.parent
    assert fa.messages == fb.messages
    assert seq.sim.now == bat.sim.now


# -- backend selection -------------------------------------------------------


def test_default_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_ACCESS_BACKEND", raising=False)
    assert default_access_backend() == "batched"
    monkeypatch.setenv("REPRO_ACCESS_BACKEND", "sequential")
    assert default_access_backend() == "sequential"
    assert NetworkConfig(n=5).access_backend == "sequential"
    monkeypatch.setenv("REPRO_ACCESS_BACKEND", "bogus")
    assert default_access_backend() == "batched"


def test_engine_rejects_unknown_backend():
    with pytest.raises(ValueError):
        AccessEngine("bogus")
    with pytest.raises(ValueError):
        SimNetwork(NetworkConfig(n=5, access_backend="bogus",
                                 require_connected=False))


def test_forced_override_restores():
    engine = AccessEngine("batched")
    assert engine.active
    with engine.forced("sequential"):
        assert not engine.active
        with engine.forced(None):  # None inherits the current state
            assert not engine.active
    assert engine.active
    with pytest.raises(ValueError):
        with engine.forced("bogus"):
            pass  # pragma: no cover


def test_strategy_override_disables_kernels():
    net = SimNetwork(NetworkConfig(n=60, seed=2, access_backend="batched"))
    strategy = FloodingStrategy().set_access_backend("sequential")
    stored = set()
    strategy.advertise(net, 0, stored.add, 10)
    assert net.access_engine._csr_cache.misses == 0  # kernels never ran
    strategy.set_access_backend(None)
    strategy.advertise(net, 0, stored.add, 10)
    assert net.access_engine._csr_cache.misses > 0


# -- CSR snapshots + staleness guard -----------------------------------------


def test_true_csr_matches_tables():
    net = SimNetwork(NetworkConfig(n=60, seed=1))
    snap = build_true_csr(net)
    assert snap.n == net.n_alive
    for node in net.alive_nodes():
        assert snap.neighbors(node) == net.true_neighbors(node)
        assert snap.degree(node) == len(net.true_neighbors(node))
    assert snap.row_of(10 ** 9) is None
    assert snap.degree(10 ** 9) == 0
    assert snap.neighbors(10 ** 9) == []


def test_known_csr_preserves_stored_order():
    net = SimNetwork(NetworkConfig(n=60, seed=1))
    net.join_node()  # append-order mutation of neighbors' known lists
    snap = build_known_csr(net)
    for node in net.alive_nodes():
        stored = [v for v in net.known_neighbors(node)
                  if snap.row_of(v) is not None]
        assert snap.neighbors(node) == stored


def test_csr_cache_staleness_guard():
    net = SimNetwork(NetworkConfig(n=60, seed=1))
    cache = CsrCache()
    first = cache.true_snapshot(net)
    assert cache.true_snapshot(net) is first  # same version: cache hit
    assert cache.hits == 1 and cache.misses == 1
    victim = net.alive_nodes()[5]
    net.fail_node(victim)
    second = cache.true_snapshot(net)
    assert second is not first  # stale version can never serve
    assert second.key == net.topology_version
    assert second.row_of(victim) is None
    assert cache.misses == 2


def test_known_csr_cache_rekeys_on_heartbeat():
    net = SimNetwork(NetworkConfig(n=60, seed=1))
    cache = CsrCache()
    first = cache.known_snapshot(net)
    assert cache.known_snapshot(net) is first
    net.advance(net.config.heartbeat_interval + 0.1)  # heartbeat fired
    second = cache.known_snapshot(net)
    assert second is not first
    assert second.key == (net.topology_version, net.known_version)


def test_known_version_counts_known_view_mutations():
    net = SimNetwork(NetworkConfig(n=30, seed=4))
    v0 = net.known_version
    net.fail_node(net.alive_nodes()[0])
    assert net.known_version > v0
    v1 = net.known_version
    net.join_node()
    assert net.known_version > v1
    v2 = net.known_version
    net.suspend_neighbor_refresh()
    net.advance(net.config.heartbeat_interval + 0.1)
    assert net.known_version == v2  # suspended heartbeat is a no-op
    net.resume_neighbor_refresh()
    assert net.known_version > v2


# -- numpy BFS kernel --------------------------------------------------------


def test_numpy_bfs_equals_python_bfs():
    bat = SimNetwork(NetworkConfig(n=200, seed=5, access_backend="batched"))
    seq = SimNetwork(NetworkConfig(n=200, seed=5,
                                   access_backend="sequential"))
    for src in (0, 77, 199):
        numpy_tree = bat.access_engine.numpy_tree(bat, src)
        assert numpy_tree is not None
        python_tree = bfs_tree(seq, src)
        assert numpy_tree.parent == python_tree.parent
        assert list(numpy_tree.parent) == list(python_tree.parent)
        assert numpy_tree.dist == python_tree.dist
        assert numpy_tree._cum == python_tree._cum


def test_numpy_bfs_declines_when_ineligible():
    small = SimNetwork(NetworkConfig(n=50, seed=5, access_backend="batched"))
    assert small.access_engine.numpy_tree(small, 0) is None  # tiny n
    big = SimNetwork(NetworkConfig(n=200, seed=5,
                                   access_backend="sequential"))
    assert big.access_engine.numpy_tree(big, 0) is None  # backend off
    bat = SimNetwork(NetworkConfig(n=200, seed=5, access_backend="batched"))
    victim = bat.alive_nodes()[3]
    bat.fail_node(victim)
    assert bat.access_engine.numpy_tree(bat, victim) is None  # dead source


def test_engine_tree_memo_keys_on_topology_version():
    net = SimNetwork(NetworkConfig(n=200, seed=5, access_backend="batched"))
    engine = net.access_engine
    t1 = engine.tree(net, 0)
    assert t1 is not None
    assert engine.tree(net, 0) is t1
    assert engine.tree_hits == 1
    net.fail_node(net.alive_nodes()[7])
    t2 = engine.tree(net, 0)
    assert t2 is not t1  # stale version evicted wholesale
    assert engine.tree_misses == 2


# -- shared cross-replica state ----------------------------------------------


def test_shared_state_serves_all_replicas():
    state = SharedAccessState()
    nets = [SimNetwork(NetworkConfig(n=200, seed=5,
                                     access_backend="batched"))
            for _ in range(2)]
    for net in nets:
        net.access_engine.adopt_shared(net, state)
    t0 = nets[0].access_engine.tree(nets[0], 3)
    t1 = nets[1].access_engine.tree(nets[1], 3)
    assert t1 is t0  # the memoized tree crossed replicas
    assert state.hits == 1 and state.misses == 1
    csr0 = nets[0].access_engine.true_csr(nets[0])
    assert nets[1].access_engine.true_csr(nets[1]) is csr0


def test_shared_state_detaches_on_churn():
    state = SharedAccessState()
    net = SimNetwork(NetworkConfig(n=200, seed=5, access_backend="batched"))
    net.access_engine.adopt_shared(net, state)
    net.access_engine.tree(net, 3)
    net.fail_node(net.alive_nodes()[0])  # workload-divergent mutation
    net.access_engine.tree(net, 3)
    assert state.misses == 1  # second tree came from the private memo


def test_shared_state_rejects_other_deployment():
    state = SharedAccessState()
    a = SimNetwork(NetworkConfig(n=200, seed=5, access_backend="batched"))
    b = SimNetwork(NetworkConfig(n=200, seed=6, access_backend="batched"))
    a.access_engine.adopt_shared(a, state)
    with pytest.raises(ValueError):
        b.access_engine.adopt_shared(b, state)


# -- Philox walker batches ---------------------------------------------------


def test_walk_batch_deterministic_and_valid():
    net = SimNetwork(NetworkConfig(n=150, seed=7))
    csr = build_true_csr(net)
    starts = net.alive_nodes()[:40]
    out = walk_batch(csr, starts, 25, seed=11)
    again = walk_batch(csr, starts, 25, seed=11)
    assert (out.paths == again.paths).all()
    assert out.walkers == 40 and out.steps == 25
    assert (out.paths[0] == csr.rows_of(np.asarray(starts))).all()
    # Every transition is along a CSR edge (or a stay-put).
    for w in range(0, 40, 5):
        for s in range(25):
            u, v = int(out.paths[s, w]), int(out.paths[s + 1, w])
            row = csr.neighbor_rows[csr.indptr[u]:csr.indptr[u + 1]]
            assert v == u or v in row.tolist()
    other = walk_batch(csr, starts, 25, seed=12)
    assert (out.paths != other.paths).any()  # seed actually matters


def test_walk_batch_max_degree_self_loops():
    net = SimNetwork(NetworkConfig(n=150, seed=7))
    csr = build_true_csr(net)
    starts = net.alive_nodes()[:64]
    out = walk_batch(csr, starts, 50, seed=3, variant="max-degree")
    assert ((out.messages + out.self_loops) == 50).all()
    assert out.self_loops.sum() > 0  # 1 - d/dmax loops must occur
    uniform = walk_batch(csr, starts, 50, seed=3, variant="uniform")
    assert (uniform.messages == 50).all()  # uniform walks always move
    assert (out.unique_counts() <= 51).all()
    assert (out.unique_counts() >= 1).all()


def test_walk_batch_input_validation():
    net = SimNetwork(NetworkConfig(n=50, seed=7, require_connected=False))
    csr = build_true_csr(net)
    with pytest.raises(ValueError):
        walk_batch(csr, [0], 5, seed=1, variant="levy")
    with pytest.raises(ValueError):
        walk_batch(csr, [10 ** 9], 5, seed=1)
    with pytest.raises(ValueError):
        walk_batch(csr, [0], -1, seed=1)
    empty = walk_batch(csr, [], 5, seed=1)
    assert empty.walkers == 0


# -- adaptation-exhaustion satellite -----------------------------------------


class _StuckMembership:
    """Membership whose draws always land on the same node (id 7)."""

    def sample_for(self, origin, k, rng):
        rng.random()  # consume like a real draw
        return [7] * k


def test_adaptation_exhausted_signal():
    net = SimNetwork(NetworkConfig(n=30, seed=4))
    net.trace.enable(memory=True)
    strategy = RandomStrategy(_StuckMembership())
    rng = net.rngs.stream("random-strategy")
    assert strategy._replacement(net, 0, {7}, rng) is None
    events = [e for e in net.trace.events()
              if e.kind == "access-adaptation-exhausted"]
    assert len(events) == 1
    assert events[0].fields["strategy"] == "RANDOM"
    assert events[0].fields["draws"] == 4
    assert net.metrics.counter("access.adaptation_exhausted").value == 1
    # An eligible replacement emits no signal and bumps nothing.
    assert strategy._replacement(net, 0, set(), rng) == 7
    assert net.metrics.counter("access.adaptation_exhausted").value == 1


def test_adaptation_exhausted_counts_on_both_backends():
    for backend in ("sequential", "batched"):
        net = SimNetwork(NetworkConfig(n=30, seed=4,
                                       access_backend=backend))
        strategy = RandomStrategy(_StuckMembership(), adaptation_retries=1)
        stored = set()
        strategy.advertise(net, 0, stored.add, 3)
        assert net.metrics.counter("access.adaptation_exhausted").value > 0
