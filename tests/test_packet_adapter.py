"""Tests for running quorum strategies over the packet-level stack."""

import random

import pytest

from repro.core import (
    FloodingStrategy,
    ProbabilisticBiquorum,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.services import LocationService
from repro.stack import AdhocStack, PacketQuorumNetwork, StackConfig


class _OracleMembership:
    """Full-membership oracle over any quorum network facade."""

    def __init__(self, net):
        self.net = net

    def sample_for(self, node_id, k, rng):
        pool = [v for v in self.net.alive_nodes() if v != node_id]
        return rng.sample(pool, min(k, len(pool)))


@pytest.fixture(scope="module")
def packet_net():
    stack = AdhocStack(StackConfig(n=25, avg_degree=10, seed=9))
    net = PacketQuorumNetwork(stack)
    net.advance(11.0)  # one HELLO round populates neighbor tables
    return net


class TestAdapterPrimitives:
    def test_hello_beacons_populate_tables(self, packet_net):
        known = set(packet_net.known_neighbors(0))
        true = set(packet_net.true_neighbors(0))
        assert known, "no HELLOs received"
        assert known <= true | known  # sanity
        # In a static network the beacon table converges to ground truth.
        assert len(known & true) >= max(1, len(true) - 2)

    def test_one_hop_unicast_to_neighbor(self, packet_net):
        v = packet_net.true_neighbors(0)[0]
        assert packet_net.one_hop_unicast(0, v)

    def test_one_hop_unicast_failure_notification(self, packet_net):
        far = max(packet_net.alive_nodes(),
                  key=lambda u: packet_net.stack.env.distance(
                      packet_net.position(0), packet_net.position(u)))
        if not packet_net.in_range(0, far):
            assert not packet_net.one_hop_unicast(0, far)

    def test_route_with_probe_ack(self, packet_net):
        result = packet_net.route(0, 20)
        assert result.success
        assert result.data_messages >= 1

    def test_route_counts_aodv_control(self, packet_net):
        # A route to a fresh destination costs discovery frames.
        result = packet_net.route(3, 17)
        assert result.success
        assert result.routing_messages >= 0

    def test_flood_covers_neighborhood(self, packet_net):
        outcome = packet_net.flood(5, ttl=2)
        assert outcome.coverage >= len(packet_net.true_neighbors(5))
        assert outcome.covered[5] == 0
        # Reverse paths reach the origin.
        node = max(outcome.covered, key=outcome.covered.get)
        path = outcome.reverse_path(node)
        assert path[-1] == 5

    def test_discover_path_unsupported(self, packet_net):
        with pytest.raises(NotImplementedError):
            packet_net.discover_path(0, 5)


class TestStrategiesOverPackets:
    def test_random_advertise(self, packet_net):
        strategy = RandomStrategy(_OracleMembership(packet_net),
                                  rng=random.Random(1))
        stored = set()
        result = strategy.advertise(packet_net, 0, stored.add, target_size=8)
        assert result.success
        assert result.quorum_size == 8
        assert result.routing_messages > 0  # real AODV discovery happened

    def test_unique_path_lookup_with_reply(self, packet_net):
        adv = RandomStrategy(_OracleMembership(packet_net),
                             rng=random.Random(2))
        stored = set()
        adv.advertise(packet_net, 0, stored.add, target_size=10)
        lookup = UniquePathStrategy(rng=random.Random(3))
        result = lookup.lookup(
            packet_net, 12, lambda v: "x" if v in stored else None,
            target_size=8)
        if result.found:
            assert result.reply_delivered
        else:
            assert result.quorum_size >= 6

    def test_flooding_lookup(self, packet_net):
        adv = RandomStrategy(_OracleMembership(packet_net),
                             rng=random.Random(4))
        stored = set()
        adv.advertise(packet_net, 1, stored.add, target_size=10)
        result = FloodingStrategy(ttl=3).lookup(
            packet_net, 12, lambda v: "x" if v in stored else None,
            target_size=10)
        assert result.found

    def test_full_location_service_pipeline(self):
        stack = AdhocStack(StackConfig(n=20, avg_degree=10, seed=13))
        net = PacketQuorumNetwork(stack)
        net.advance(11.0)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(_OracleMembership(net),
                                          rng=random.Random(5)),
            lookup=UniquePathStrategy(rng=random.Random(6)),
            epsilon=0.1)
        svc = LocationService(bq)
        svc.advertise(0, "sensor", "reading-42")
        rng = random.Random(7)
        hits = sum(svc.lookup(net.random_alive_node(rng), "sensor").found
                   for _ in range(6))
        # Tiny 20-node net: quorums of ~8 intersect essentially always.
        assert hits >= 4
