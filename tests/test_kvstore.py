"""Tests for the replicated key-value store with timed-quorum leases.

Covers the serving surface (put/get/cas over the biquorum), the lease
lifecycle (expiry, renewal, lazy reclamation, adaptive TTL), masking
composition, and the consistency-history checker — including mutation
tests that inject corrupted histories and assert each violation class
is caught.
"""

import math

import pytest

from repro.core import (
    MaskingStrategy,
    ProbabilisticBiquorum,
    RandomStrategy,
)
from repro.membership import FullMembership
from repro.services import (
    KVHistoryChecker,
    QuorumKVStore,
    Timestamp,
    check_kv_batch,
)
from repro.simnet import NetworkConfig, SimNetwork


def build(n=100, seed=0, epsilon=0.05, lease_ttl=1e5, masking_b=None,
          **kv_kw):
    net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed))
    membership = FullMembership(net)
    lookup = RandomStrategy(membership)
    if masking_b is not None:
        lookup = MaskingStrategy(lookup, masking_b)
    bq = ProbabilisticBiquorum(
        net, advertise=RandomStrategy(membership), lookup=lookup,
        epsilon=epsilon)
    store = QuorumKVStore(bq, lease_ttl=lease_ttl, **kv_kw)
    return net, store


class TestPutGetCas:
    def test_put_then_get(self):
        net, store = build()
        put = store.put(0, "color", "green")
        assert put.ok and put.version is not None
        got = store.get(50, "color")
        assert got.ok and got.value == "green"
        assert got.version == put.version

    def test_get_unknown_key_misses(self):
        net, store = build()
        got = store.get(10, "nothing")
        assert not got.ok and got.value is None and got.version is None

    def test_versions_increase_per_writer(self):
        net, store = build()
        v1 = store.put(0, "k", "a").version
        v2 = store.put(0, "k", "b").version
        v3 = store.put(1, "k", "c").version
        assert v1 < v2 < v3

    def test_cas_insert_if_absent(self):
        net, store = build()
        first = store.cas(0, "slot", None, "claimed")
        assert first.ok
        second = store.cas(1, "slot", None, "stolen")
        assert not second.ok
        assert store.get(2, "slot").value == "claimed"

    def test_cas_succeeds_on_match_fails_on_mismatch(self):
        net, store = build()
        store.put(0, "k", "v1")
        bad = store.cas(1, "k", "wrong", "v2")
        assert not bad.ok
        good = store.cas(1, "k", "v1", "v2")
        assert good.ok
        assert store.get(2, "k").value == "v2"

    def test_latency_and_messages_accounted(self):
        net, store = build()
        put = store.put(0, "k", "v")
        assert put.latency > 0 and put.messages > 0
        assert len(put.accesses) == 2  # query + propagate

    def test_metrics_counters(self):
        net, store = build()
        store.put(0, "k", "v")
        store.get(1, "k")
        assert net.metrics.counter_value("kv.put.count") == 1
        assert net.metrics.counter_value("kv.get.ok") == 1


class TestLeases:
    def test_get_misses_after_expiry(self):
        net, store = build(lease_ttl=5.0)
        store.put(0, "k", "v")
        assert store.get(1, "k").ok
        net.run_until(net.now + 10.0)
        assert not store.get(1, "k").ok

    def test_rewrite_renews_lease(self):
        net, store = build(lease_ttl=5.0)
        store.put(0, "k", "v")
        net.run_until(net.now + 4.0)
        store.put(0, "k", "v2")  # fresh lease on a new quorum
        net.run_until(net.now + 4.0)
        got = store.get(1, "k")
        assert got.ok and got.value == "v2"

    def test_lazy_reclamation_counted(self):
        net, store = build(lease_ttl=5.0)
        store.put(0, "k", "v")
        net.run_until(net.now + 10.0)
        assert net.metrics.counter_value("kv.lease.reclaimed") == 0
        store.get(1, "k")  # the touch that sweeps expired entries
        assert net.metrics.counter_value("kv.lease.reclaimed") > 0

    def test_holders_empty_after_expiry(self):
        net, store = build(lease_ttl=5.0)
        store.put(0, "k", "v")
        assert len(store.holders_of("k")) > 0
        net.run_until(net.now + 10.0)
        assert store.holders_of("k") == []

    def test_fixed_ttl_reported(self):
        net, store = build(lease_ttl=42.0)
        assert store.current_ttl() == 42.0

    def test_churn_rate_estimate_derives_ttl(self):
        net, store = build(lease_ttl=None, churn_rate=0.01,
                           min_survival=0.9)
        # ln(1/0.9)/0.01 ~ 10.54s
        assert store.current_ttl() == pytest.approx(
            math.log(1.0 / 0.9) / 0.01)

    def test_adaptive_ttl_shrinks_under_churn(self):
        net, store = build(lease_ttl=None, adaptive=True)
        quiet = store.current_ttl()
        for victim in range(10):
            net.fail_node(victim)
        net.run_until(net.now + 50.0)
        assert store.observed_churn_rate() > 0
        assert store.current_ttl() < quiet


class TestMaskingComposition:
    def test_put_get_under_masking(self):
        net, store = build(masking_b=1, epsilon=0.02)
        store.put(0, "k", "safe")
        got = store.get(1, "k")
        assert got.ok and got.value == "safe"

    def test_expired_entries_not_voted(self):
        net, store = build(masking_b=1, epsilon=0.02, lease_ttl=5.0)
        store.put(0, "k", "v")
        net.run_until(net.now + 10.0)
        # Expired leases never reply, so the vote tally stays empty:
        # the masking read misses instead of confirming dead data.
        assert not store.get(1, "k").ok


class TestCheckerIntegration:
    def test_honest_run_is_clean(self):
        net, store = build(checker=KVHistoryChecker())
        for i in range(5):
            store.put(i, f"k{i % 2}", f"v{i}")
        for i in range(10):
            store.get(i, f"k{i % 2}")
        store.cas(0, "k0", store.get(0, "k0").value, "final")
        report = store.checker.report()
        assert report.clean
        assert report.writes == 5 and report.reads == 11
        assert report.cas_attempts == 1

    def test_lease_expired_miss_is_not_violation(self):
        net, store = build(lease_ttl=5.0, checker=KVHistoryChecker())
        store.put(0, "k", "v")
        net.run_until(net.now + 10.0)
        store.get(1, "k")
        report = store.checker.report()
        assert report.clean and report.missed_reads == 1


class TestCheckerMutations:
    """Inject corrupted histories; every violation class must be caught."""

    def test_stale_read_counted_not_violated(self):
        c = KVHistoryChecker()
        c.record_put("k", 0, Timestamp(1, 0), "old", 0.0)
        c.record_put("k", 1, Timestamp(2, 1), "new", 1.0)
        c.record_get("k", 2, True, "old", Timestamp(1, 0), 2.0)
        report = c.report()
        assert report.clean and report.stale_reads == 1

    def test_fabricated_version_caught(self):
        c = KVHistoryChecker()
        c.record_get("k", 0, True, "ghost", Timestamp(9, 9), 0.0)
        assert c.report().violations == {"fabricated-read": 1}

    def test_fabricated_value_caught(self):
        c = KVHistoryChecker()
        c.record_put("k", 0, Timestamp(1, 0), "real", 0.0)
        c.record_get("k", 1, True, "forged", Timestamp(1, 0), 1.0)
        assert c.report().violations == {"fabricated-read": 1}

    def test_lost_cas_caught(self):
        c = KVHistoryChecker()
        c.record_put("k", 0, Timestamp(1, 0), "v", 0.0)
        c.record_cas("k", 1, True, Timestamp(2, 1), "w",
                     Timestamp(1, 0), 1.0, committed=False)
        assert c.report().violations == {"cas-lost": 1}

    def test_stale_cas_counted_not_violated(self):
        c = KVHistoryChecker()
        c.record_put("k", 0, Timestamp(1, 0), "a", 0.0)
        c.record_put("k", 1, Timestamp(2, 1), "b", 1.0)
        # cas decided off the stale (1, 0) view but still committed.
        c.record_cas("k", 2, True, Timestamp(3, 2), "c",
                     Timestamp(1, 0), 2.0, committed=True)
        report = c.report()
        assert report.clean and report.stale_cas == 1

    def test_duplicate_version_caught(self):
        c = KVHistoryChecker()
        c.record_put("k", 0, Timestamp(1, 0), "a", 0.0)
        c.record_put("k", 0, Timestamp(1, 0), "a-again", 1.0)
        assert c.report().violations == {"duplicate-version": 1}

    def test_expired_read_caught(self):
        c = KVHistoryChecker()
        c.record_put("k", 0, Timestamp(1, 0), "v", 0.0)
        c.record_get("k", 1, True, "v", Timestamp(1, 0),
                     started_at=10.0, expires_at=5.0)
        assert c.report().violations == {"expired-read": 1}

    def test_batch_checker_catches_each_class(self):
        inf = math.inf
        # reads: [clean hit, stale, missed, fabricated, future, expired]
        report = check_kv_batch(
            read_time=[1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            read_version=[3, 1, -1, 2, 7, 3],
            read_latest=[3, 3, 3, -1, 3, 3],
            read_expiry=[inf, inf, inf, inf, inf, 5.5],
        )
        assert report.stale_reads == 1 and report.missed_reads == 1
        assert report.violations == {
            "fabricated-read": 1, "future-read": 1, "expired-read": 1}

    def test_batch_checker_clean_case(self):
        report = check_kv_batch(
            read_time=[1.0, 2.0],
            read_version=[1, 2],
            read_latest=[2, 2],
            read_expiry=[math.inf, math.inf],
            writes=2, cas_attempts=1, cas_successes=1,
        )
        assert report.clean and report.stale_reads == 1
        assert report.ops == 5
