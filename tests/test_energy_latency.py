"""Tests for the energy model and per-access latency accounting."""

import math
import random

import pytest

from repro.core import (
    FloodingStrategy,
    ProbabilisticBiquorum,
    RandomStrategy,
    UniquePathStrategy,
)
from repro.membership import FullMembership
from repro.simnet import EnergyLedger, EnergyModel, NetworkConfig, SimNetwork


def make_net(n=80, seed=0, **kw):
    kw.setdefault("avg_degree", 10)
    return SimNetwork(NetworkConfig(n=n, seed=seed, **kw))


class TestEnergyLedger:
    def test_unicast_charges_sender_and_receiver(self):
        ledger = EnergyLedger()
        ledger.charge_unicast(1, 2)
        assert ledger.spent_by(1) == pytest.approx(1.0)
        assert ledger.spent_by(2) == pytest.approx(0.8)

    def test_broadcast_costs_more_per_frame(self):
        model = EnergyModel()
        uni = EnergyLedger(model)
        bro = EnergyLedger(model)
        uni.charge_unicast(0, 1)
        bro.charge_broadcast(0, receivers=1)
        assert bro.total > uni.total

    def test_failed_unicast_still_costs_tx(self):
        ledger = EnergyLedger()
        ledger.charge_failed_unicast(3)
        assert ledger.spent_by(3) == pytest.approx(1.0)

    def test_bystander_header_decode(self):
        ledger = EnergyLedger()
        ledger.charge_unicast(0, 1, bystanders=10)
        assert ledger.total > 1.8  # tx + rx + 10 header decodes

    def test_max_node_share(self):
        ledger = EnergyLedger()
        for _ in range(9):
            ledger.charge_unicast(0, 1)
        assert ledger.max_node_share() == pytest.approx(
            9.0 / ledger.total)

    def test_empty_ledger(self):
        ledger = EnergyLedger()
        assert ledger.total == 0.0
        assert ledger.max_node_share() == 0.0


class TestNetworkEnergyAccounting:
    def test_unicast_accumulates_energy(self):
        net = make_net()
        before = net.energy.total
        v = net.true_neighbors(0)[0]
        net.one_hop_unicast(0, v)
        assert net.energy.total > before
        assert net.energy.spent_by(0) >= 1.0

    def test_failed_unicast_charges_sender_only(self):
        net = make_net()
        far = max(net.alive_nodes(),
                  key=lambda u: net.distance(net.position(0),
                                             net.position(u)))
        net.one_hop_unicast(0, far)
        assert net.energy.spent_by(0) == pytest.approx(1.0)
        assert net.energy.spent_by(far) == 0.0

    def test_broadcast_charges_all_receivers(self):
        net = make_net()
        receivers = net.one_hop_broadcast(0)
        model = net.energy.model
        expected = model.tx_broadcast + len(receivers) * model.rx_broadcast
        assert net.energy.total >= expected - 1e-9

    def test_flooding_lookup_costs_more_energy_than_walk(self):
        """Section 4.4's energy argument, measured end to end."""
        qa = max(1, round(2 * math.sqrt(80)))
        ql = max(1, round(1.15 * math.sqrt(80)))

        def run(lookup_strategy):
            net = make_net(seed=5)
            membership = FullMembership(net)
            bq = ProbabilisticBiquorum(
                net, advertise=RandomStrategy(membership),
                lookup=lookup_strategy, advertise_size=qa, lookup_size=ql,
                adjust_to_network_size=False)
            stored = set()
            bq.write(0, stored.add)
            baseline = net.energy.total
            rng = random.Random(1)
            for _ in range(8):
                bq.read(net.random_alive_node(rng),
                        lambda v: "x" if v in stored else None)
            return net.energy.total - baseline

        walk_energy = run(UniquePathStrategy(rng=random.Random(2)))
        flood_energy = run(FloodingStrategy(ttl=3))
        assert flood_energy > walk_energy


class TestAccessLatency:
    def make_bq(self, lookup=None, seed=0):
        net = make_net(seed=seed)
        membership = FullMembership(net)
        return net, ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=lookup or UniquePathStrategy(), epsilon=0.1)

    def test_write_latency_recorded(self):
        net, bq = self.make_bq()
        result = bq.write(0, lambda v: None)
        assert result.latency > 0.0

    def test_read_latency_recorded(self):
        net, bq = self.make_bq()
        stored = set()
        bq.write(0, stored.add)
        result = bq.read(40, lambda v: "x" if v in stored else None)
        assert result.latency >= 0.0

    def test_latency_scales_with_hop_latency(self):
        def measure(hop_latency, seed=3):
            net = make_net(seed=seed, hop_latency=hop_latency)
            membership = FullMembership(net)
            bq = ProbabilisticBiquorum(
                net, advertise=RandomStrategy(membership),
                lookup=UniquePathStrategy(), epsilon=0.1)
            return bq.write(0, lambda v: None).latency

        assert measure(0.02) > measure(0.002)

    def test_early_halting_cuts_lookup_latency(self):
        stored_everywhere = lambda v: "x"
        net1, bq1 = self.make_bq(UniquePathStrategy(early_halting=True),
                                 seed=4)
        net2, bq2 = self.make_bq(UniquePathStrategy(early_halting=False),
                                 seed=4)
        for bq in (bq1, bq2):
            bq.write(0, lambda v: None)
        r1 = bq1.read(40, stored_everywhere)
        r2 = bq2.read(40, stored_everywhere)
        assert r1.latency <= r2.latency
