"""Tests for the discrete-event kernel."""

import math

import pytest

from repro.sim import Event, PeriodicTimer, SimulationError, Simulator


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_and_run_executes_callback(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.run()
        assert fired == ["a"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_simultaneous_events_run_fifo(self):
        sim = Simulator()
        order = []
        for i in range(10):
            sim.schedule(1.0, order.append, i)
        sim.run()
        assert order == list(range(10))

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        times = []
        sim.schedule_at(4.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [4.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_zero_delay_event_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, fired.append, True)
        sim.run()
        assert fired == [True]

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]


class TestRunControl:
    def test_run_until_stops_clock_at_bound(self):
        sim = Simulator()
        sim.schedule(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert sim.pending_count == 1

    def test_run_until_includes_events_at_bound(self):
        sim = Simulator()
        fired = []
        sim.schedule(4.0, fired.append, True)
        sim.run(until=4.0)
        assert fired == [True]

    def test_run_until_advances_clock_with_empty_queue(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_resumes_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, True)
        sim.run(until=5.0)
        assert fired == []
        sim.run()
        assert fired == [True]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        count = []
        for _ in range(10):
            sim.schedule(1.0, count.append, 1)
        sim.run(max_events=3)
        assert len(count) == 3

    def test_step_executes_one_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(2.0, fired.append, 2)
        assert sim.step()
        assert fired == [1]

    def test_step_empty_queue_returns_false(self):
        assert not Simulator().step()

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 5

    def test_reset_clears_state(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.schedule(2.0, lambda: None)
        sim.reset()
        assert sim.now == 0.0
        assert sim.pending_count == 0

    def test_nested_run_advances_clock(self):
        sim = Simulator()
        seen = []

        def callback():
            # Protocol code advancing the clock from within an event.
            sim.run(until=sim.now + 0.5)
            seen.append(sim.now)

        sim.schedule(1.0, callback)
        sim.run(until=10.0)
        assert seen == [1.5]
        assert sim.now == 10.0

    def test_nested_run_executes_due_events(self):
        sim = Simulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.2, order.append, "inner")
            sim.run(until=sim.now + 0.5)
            order.append("after-nested")

        sim.schedule(1.0, outer)
        sim.schedule(2.0, order.append, "later")
        sim.run()
        assert order == ["outer", "inner", "after-nested", "later"]

    def test_clock_never_goes_backwards_after_nested_run(self):
        sim = Simulator()
        times = []

        def first():
            sim.run(until=sim.now + 1.0)  # jumps past the second event

        sim.schedule(1.0, first)
        sim.schedule(1.5, lambda: times.append(sim.now))
        sim.run(until=1.2)
        assert sim.now == 2.0  # nested run moved beyond the outer bound
        assert times == [1.5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, True)
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_pending_property(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        assert ev.pending
        ev.cancel()
        assert not ev.pending

    def test_cancelled_events_not_counted_pending(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.pending_count == 1


class TestPeriodicTimer:
    def test_fires_every_interval(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_start_delay_zero_fires_immediately(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 2.0, lambda: ticks.append(sim.now), start_delay=0.0)
        sim.run(until=2.5)
        assert ticks == [0.0, 2.0]

    def test_stop_halts_ticks(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now))
        sim.run(until=1.5)
        timer.stop()
        sim.run(until=5.0)
        assert ticks == [1.0]
        assert not timer.active

    def test_stop_from_within_callback(self):
        sim = Simulator()
        ticks = []
        timer = PeriodicTimer(sim, 1.0, lambda: (ticks.append(1), timer.stop()))
        sim.run(until=5.0)
        assert len(ticks) == 1

    def test_jitter_applied(self):
        sim = Simulator()
        ticks = []
        PeriodicTimer(sim, 1.0, lambda: ticks.append(sim.now),
                      jitter_fn=lambda: 0.25)
        sim.run(until=3.0)
        assert ticks == [1.25, 2.5]

    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            PeriodicTimer(Simulator(), 0.0, lambda: None)
