"""Tests for the extension features: promiscuous overhearing, gossip-flood
quorums, network-size estimation, consistency checking, and the CLI."""

import math
import random

import pytest

from repro import (
    CheckedRegister,
    FullMembership,
    GossipFloodStrategy,
    NetworkConfig,
    NetworkSizeEstimator,
    ProbabilisticBiquorum,
    ProbabilisticRegister,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
)
from repro.cli import DESCRIPTIONS, FIGURES, build_parser, main


def make_net(n=100, seed=0, **kw):
    return SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed, **kw))


class TestOverhearing:
    def probe_for(self, targets):
        hits = set(targets)
        return lambda node: "v" if node in hits else None

    def test_overhearing_halts_on_neighbor_hit(self):
        net = make_net(seed=1)
        # Datum stored ONLY at neighbors of node 0 (not at 0 itself).
        owners = set(net.true_neighbors(0))
        strategy = UniquePathStrategy(overhearing=True,
                                      rng=random.Random(2))
        result = strategy.lookup(net, 0, self.probe_for(owners),
                                 target_size=30)
        assert result.found
        assert result.overheard or result.hit_node in owners

    def test_overhearing_shortens_walks(self):
        net = make_net(seed=3)
        rng_a, rng_b = random.Random(5), random.Random(5)
        owners = set(net.alive_nodes()[60:75])
        plain = UniquePathStrategy(overhearing=False, rng=rng_a)
        hear = UniquePathStrategy(overhearing=True, rng=rng_b)
        plain_res = plain.lookup(net, 0, self.probe_for(owners), 40)
        hear_res = hear.lookup(net, 0, self.probe_for(owners), 40)
        if plain_res.found and hear_res.found:
            assert hear_res.quorum_size <= plain_res.quorum_size

    def test_overhearing_off_by_default(self):
        assert not UniquePathStrategy().overhearing

    def test_no_false_hits_without_data(self):
        net = make_net(seed=1)
        strategy = UniquePathStrategy(overhearing=True,
                                      rng=random.Random(2))
        result = strategy.lookup(net, 0, lambda v: None, target_size=10)
        assert not result.found
        assert not result.overheard


class TestGossipFloodStrategy:
    def test_advertise_selects_about_target_size(self):
        net = make_net(seed=4)
        strategy = GossipFloodStrategy(rng=random.Random(1))
        stored = []
        result = strategy.advertise(net, 0, stored.append, target_size=20)
        assert result.success
        assert 8 <= result.quorum_size <= 40  # binomial around 20
        assert sorted(stored) == result.quorum

    def test_advertise_costs_a_whole_network_flood(self):
        net = make_net(seed=4)
        strategy = GossipFloodStrategy(rng=random.Random(1))
        result = strategy.advertise(net, 0, lambda v: None, target_size=20)
        assert result.messages >= 0.7 * net.n_alive

    def test_members_are_spread_uniformly(self):
        net = make_net(n=120, seed=5)
        strategy = GossipFloodStrategy(rng=random.Random(2))
        counts = {}
        for origin in range(10):
            result = strategy.advertise(net, origin, lambda v: None,
                                        target_size=24)
            for m in result.quorum:
                counts[m] = counts.get(m, 0) + 1
        # Many distinct nodes selected across accesses.
        assert len(counts) >= 70

    def test_uniform_random_flag_enables_mix_and_match(self):
        assert GossipFloodStrategy.uniform_random

    def test_mix_with_unique_path_intersects(self):
        net = make_net(n=120, seed=6)
        bq = ProbabilisticBiquorum(
            net, advertise=GossipFloodStrategy(rng=random.Random(3)),
            lookup=UniquePathStrategy(), epsilon=0.1)
        rng = random.Random(4)
        hits = 0
        for _ in range(12):
            stored = set()
            bq.write(net.random_alive_node(rng), stored.add)
            res = bq.read(net.random_alive_node(rng),
                          lambda v: "x" if v in stored else None)
            hits += bool(res.found)
        assert hits >= 9

    def test_lookup_replies(self):
        net = make_net(seed=7)
        strategy = GossipFloodStrategy(rng=random.Random(5))
        owners = set(net.alive_nodes())
        result = strategy.lookup(net, 0, lambda v: "x", target_size=15)
        assert result.found and result.reply_delivered


class TestNetworkSizeEstimator:
    def test_estimate_in_right_ballpark(self):
        net = make_net(n=100, seed=8)
        est = NetworkSizeEstimator(net, origin=0, rng=random.Random(0))
        result = est.estimate(target_collisions=20)
        assert 45 <= result.estimate <= 300
        assert result.collisions_observed > 0
        assert result.messages > 0

    def test_conservative_rounds_up(self):
        net = make_net(n=100, seed=8)
        est = NetworkSizeEstimator(net, origin=0, safety_factor=1.5,
                                   rng=random.Random(0))
        result = est.estimate(target_collisions=20)
        assert result.conservative >= result.estimate

    def test_quorum_size_from_estimate(self):
        net = make_net(n=100, seed=8)
        est = NetworkSizeEstimator(net, origin=0, rng=random.Random(0))
        q = est.quorum_size_for(epsilon=0.1)
        true_q = math.ceil(math.sqrt(100 * math.log(10)))
        # Overestimation is fine; underestimation capped by the ballpark.
        assert 0.6 * true_q <= q <= 3 * true_q

    def test_estimated_sizing_still_intersects(self):
        net = make_net(n=100, seed=9)
        est = NetworkSizeEstimator(net, origin=0, rng=random.Random(1))
        q = est.quorum_size_for(epsilon=0.1)
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(),
            advertise_size=q, lookup_size=q, adjust_to_network_size=False)
        rng = random.Random(2)
        hits = 0
        for _ in range(10):
            stored = set()
            bq.write(net.random_alive_node(rng), stored.add)
            res = bq.read(net.random_alive_node(rng),
                          lambda v: "x" if v in stored else None)
            hits += bool(res.found)
        assert hits >= 7

    def test_invalid_safety_factor(self):
        with pytest.raises(ValueError):
            NetworkSizeEstimator(make_net(), 0, safety_factor=0.5)


class TestCheckedRegister:
    def make(self, seed=0):
        net = make_net(seed=seed)
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(early_halting=False), epsilon=0.05)
        return CheckedRegister(ProbabilisticRegister(bq))

    def test_history_recorded(self):
        reg = self.make()
        reg.write(0, "a")
        reg.read(10)
        assert [op.kind for op in reg.history] == ["write", "read"]

    def test_consistent_history_passes(self):
        reg = self.make()
        reg.write(0, "a")
        reg.read(10)
        reg.write(5, "b")
        reg.read(60)
        report = reg.check()
        assert report.reads == 2 and report.writes == 2
        assert report.within_epsilon(0.05, slack=0.6)

    def test_violation_rate_tracks_epsilon(self):
        reg = self.make(seed=3)
        rng = random.Random(0)
        net = reg.register.net
        for i in range(6):
            reg.write(net.random_alive_node(rng), f"v{i}")
            for _ in range(3):
                reg.read(net.random_alive_node(rng))
        report = reg.check()
        assert report.reads == 18
        # epsilon = 0.05 per quorum pair; reads do two phases, allow slack.
        assert report.violation_rate <= 0.35

    def test_stale_read_detected(self):
        reg = self.make()
        reg.write(0, "fresh")
        # Forge a stale read into the history.
        from repro.services.consistency import OpRecord
        reg.history.append(OpRecord(index=99, kind="read", origin=1,
                                    value="stale", timestamp=None,
                                    messages=0))
        report = reg.check()
        assert report.stale_reads == 1


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "available figures" in capsys.readouterr().out

    def test_every_figure_has_description(self):
        assert set(FIGURES) == set(DESCRIPTIONS)

    def test_parser_accepts_common_flags(self):
        args = build_parser().parse_args(
            ["fig10", "--n", "80", "--lookups", "10"])
        assert args.n == 80 and args.lookups == 10

    def test_fig3_runs_fast(self, capsys):
        assert main(["fig3", "--n", "100"]) == 0
        assert "UNIQUE-PATH" in capsys.readouterr().out

    def test_fig7_runs(self, capsys):
        assert main(["fig7", "--n", "100", "--trials", "50"]) == 0
        assert "failures-constant" in capsys.readouterr().out

    def test_fig5_runs(self, capsys):
        assert main(["fig5", "--n", "60"]) == 0
        assert "coverage" in capsys.readouterr().out

    def test_report_aggregates_results(self, tmp_path, capsys):
        results = tmp_path / "results"
        results.mkdir()
        (results / "fig_test.txt").write_text("Figure T\na | b\n1 | 2\n")
        assert main(["report", "--results-dir", str(results)]) == 0
        out = capsys.readouterr().out
        assert "fig_test" in out and "Figure T" in out

    def test_report_to_file(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "x.txt").write_text("data\n")
        output = tmp_path / "report.md"
        assert main(["report", "--results-dir", str(results),
                     "--output", str(output)]) == 0
        assert "data" in output.read_text()

    def test_report_missing_dir_is_graceful(self, tmp_path, capsys):
        assert main(["report", "--results-dir",
                     str(tmp_path / "nope")]) == 0
        assert "no results" in capsys.readouterr().out
