"""Tests for the closed-form theory: intersection, degradation, walks,
costs, flooding coverage, resilience."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    access_cost_rgg,
    asymmetric_quorum_sizes,
    combination_cost,
    coverage_granularity,
    crossing_time_at_connectivity_threshold,
    crossing_time_lower_bound,
    epsilon_for_sizes,
    estimate_network_size,
    expected_coverage,
    failure_probability_bound,
    fault_tolerance,
    figure3_table,
    figure6_table,
    intersection_after_churn,
    intersection_probability,
    malkhi_miss_bound,
    malkhi_quorum_size,
    max_tolerable_churn,
    min_degree_for_connectivity,
    miss_failures_adjusted_lookup,
    miss_failures_constant_lookup,
    miss_joins_adjusted_lookup,
    miss_joins_and_failures,
    miss_joins_constant_lookup,
    miss_probability_bound,
    miss_probability_exact,
    optimal_lookup_size,
    optimal_size_ratio,
    path_x_path_quorum_size,
    pct_complete_graph,
    pct_empirical,
    pct_upper_bound,
    per_node_access_cost,
    refresh_schedule,
    required_quorum_product,
    rgg_theorem_radius_ok,
    samples_for_size_estimate,
    strategy_profile,
    survivable_failures,
    symmetric_quorum_size,
    total_cost,
    ttl_for_coverage,
    uniform_sampling_cost,
)
from repro.analysis.degradation import RefreshPlan


class TestIntersection:
    def test_exact_below_bound(self):
        for qa, ql, n in [(10, 10, 100), (20, 30, 400), (5, 50, 200)]:
            assert miss_probability_exact(qa, ql, n) <= \
                miss_probability_bound(qa, ql, n)

    def test_bound_formula(self):
        assert miss_probability_bound(20, 20, 400) == pytest.approx(
            math.exp(-1.0))

    def test_exact_zero_when_quorums_cover_universe(self):
        assert miss_probability_exact(60, 50, 100) == 0.0

    def test_exact_one_when_lookup_empty(self):
        assert miss_probability_exact(10, 0, 100) == 1.0

    def test_intersection_probability_complement(self):
        p = intersection_probability(20, 20, 400, exact=True)
        assert p == pytest.approx(1.0 - miss_probability_exact(20, 20, 400))

    def test_corollary_5_3_product(self):
        product = required_quorum_product(800, 0.1)
        assert product == pytest.approx(800 * math.log(10))

    def test_symmetric_size_guarantees_epsilon(self):
        n, eps = 800, 0.1
        q = symmetric_quorum_size(n, eps)
        assert miss_probability_bound(q, q, n) <= eps

    def test_symmetric_size_is_theta_sqrt_n(self):
        q = symmetric_quorum_size(900, 0.1)
        assert 30 <= q <= 2 * 30 * math.sqrt(math.log(10)) + 2

    def test_asymmetric_sizes_meet_product(self):
        qa, ql = asymmetric_quorum_sizes(800, 0.1, ratio_l_over_a=0.5)
        assert qa * ql >= required_quorum_product(800, 0.1) - 1
        assert ql / qa == pytest.approx(0.5, rel=0.15)

    def test_epsilon_for_sizes_inverse(self):
        eps = epsilon_for_sizes(40, 40, 800)
        assert eps == pytest.approx(math.exp(-2.0))

    def test_malkhi_size_and_bound(self):
        assert malkhi_quorum_size(100, 2.0) == 20
        assert malkhi_miss_bound(2.0) == pytest.approx(math.exp(-4))

    def test_paper_example_0_9_intersection(self):
        # 1-eps = 0.9 needs |Qa||Ql| >= 2.3 n (Section 5.2 example).
        assert required_quorum_product(1000, 0.1) == pytest.approx(
            2.302 * 1000, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            miss_probability_bound(10, 10, 0)
        with pytest.raises(ValueError):
            miss_probability_bound(101, 10, 100)
        with pytest.raises(ValueError):
            required_quorum_product(100, 0.0)

    @given(st.integers(2, 500), st.integers(1, 40), st.integers(1, 40))
    @settings(max_examples=50)
    def test_exact_in_unit_interval(self, n, qa, ql):
        qa, ql = min(qa, n), min(ql, n)
        p = miss_probability_exact(qa, ql, n)
        assert 0.0 <= p <= 1.0

    @given(st.integers(10, 500), st.integers(1, 9))
    @settings(max_examples=50)
    def test_miss_decreases_in_quorum_size(self, n, q):
        q2 = min(q + 1, n)
        assert miss_probability_exact(q2, q, n) <= \
            miss_probability_exact(q, q, n) + 1e-12


class TestDegradation:
    def test_failures_constant_is_flat(self):
        assert miss_failures_constant_lookup(0.05, 0.5) == 0.05

    def test_failures_adjusted_grows(self):
        assert miss_failures_adjusted_lookup(0.05, 0.3) > 0.05

    def test_joins_constant_grows(self):
        assert miss_joins_constant_lookup(0.05, 0.3) > 0.05

    def test_joins_adjusted_better_than_constant(self):
        assert miss_joins_adjusted_lookup(0.05, 0.5) < \
            miss_joins_constant_lookup(0.05, 0.5)

    def test_both_formula(self):
        assert miss_joins_and_failures(0.05, 0.3) == pytest.approx(
            0.05 ** 0.7)

    def test_paper_example_30_percent(self):
        # eps=0.05, 30% churn: intersection drops to just below 0.9.
        inter = intersection_after_churn(0.05, 0.3, "both")
        assert 0.87 <= inter <= 0.93

    def test_zero_churn_no_degradation(self):
        for mode in ("failures-adjusted", "joins-constant", "both"):
            assert intersection_after_churn(0.05, 0.0, mode) == \
                pytest.approx(0.95)

    def test_monotone_in_churn(self):
        vals = [intersection_after_churn(0.05, f, "both")
                for f in (0.0, 0.2, 0.4, 0.6)]
        assert vals == sorted(vals, reverse=True)

    def test_max_tolerable_churn_both(self):
        f = max_tolerable_churn(0.05, 0.9, "both")
        assert intersection_after_churn(0.05, f, "both") == pytest.approx(
            0.9, abs=1e-9)

    def test_max_tolerable_infinite_for_failures_constant(self):
        assert math.isinf(max_tolerable_churn(0.05, 0.9,
                                              "failures-constant"))

    def test_max_tolerable_zero_when_already_below(self):
        assert max_tolerable_churn(0.2, 0.9, "both") == 0.0

    def test_refresh_schedule_daily_example(self):
        # 30% churn per day, floor 0.9, eps 0.05 -> refresh ~ once a day.
        per_second = 0.3 / 86400.0
        plan = refresh_schedule(0.05, 0.9, per_second, "both")
        assert plan.refresh_interval_seconds == pytest.approx(
            86400.0, rel=0.35)

    def test_refresh_schedule_zero_churn(self):
        plan = refresh_schedule(0.05, 0.9, 0.0)
        assert math.isinf(plan.refresh_interval_seconds)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            intersection_after_churn(0.05, 0.1, "meteor")


class TestWalkTheory:
    def test_pct_bound_linear(self):
        assert pct_upper_bound(100) == pytest.approx(2 * 1.7 * 100)

    def test_pct_empirical_paper_value(self):
        # PCT(sqrt(800)) ~ 1.7 * 28 ~ 48 steps (Section 4.2).
        assert pct_empirical(28) == pytest.approx(47.6)

    def test_pct_complete_graph_half(self):
        # PCT_complete(n/2) ~ ln(2) n.
        n = 1000
        assert pct_complete_graph(n, n // 2) == pytest.approx(
            math.log(2) * n, rel=0.01)

    def test_pct_complete_graph_full_is_coupon_collector(self):
        n = 100
        assert pct_complete_graph(n, n) == pytest.approx(
            (n - 1) * sum(1 / k for k in range(1, n)), rel=1e-9)

    def test_crossing_time_r_squared(self):
        assert crossing_time_lower_bound(100, 0.1) == pytest.approx(100.0)

    def test_crossing_time_at_threshold(self):
        assert crossing_time_at_connectivity_threshold(800) == pytest.approx(
            800 / math.log(800))

    def test_path_x_path_size_paper_example(self):
        # n=800: |Q| ~ 1.5 * 800 / ln(800) ~ 170 ~ n/4.7 (Section 8.5).
        q = path_x_path_quorum_size(800)
        assert 165 <= q <= 185

    def test_mixing_cost(self):
        assert uniform_sampling_cost(28, 800) == pytest.approx(28 * 400)

    def test_theorem_radius_check(self):
        assert rgg_theorem_radius_ok(100, 0.8)
        assert not rgg_theorem_radius_ok(100, 0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            pct_upper_bound(0)
        with pytest.raises(ValueError):
            pct_complete_graph(10, 11)


class TestCosts:
    def test_profiles_match_figure3(self):
        assert strategy_profile("RANDOM").needs_routing
        assert strategy_profile("RANDOM").needs_membership
        assert not strategy_profile("PATH").needs_routing
        assert strategy_profile("PATH").early_halting
        assert strategy_profile("PATH").lookup_replies == "one"
        assert strategy_profile("FLOODING").lookup_replies == "multiple"
        assert not strategy_profile("FLOODING").early_halting

    def test_uniform_random_flags(self):
        assert strategy_profile("RANDOM").uniform_random
        assert strategy_profile("RANDOM-SAMPLING").uniform_random
        assert not strategy_profile("RANDOM-OPT").uniform_random
        assert not strategy_profile("UNIQUE-PATH").uniform_random

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            strategy_profile("CARRIER-PIGEON")

    def test_random_cost_scales_with_route_length(self):
        q = 28
        assert access_cost_rgg("RANDOM", 800, q) == pytest.approx(
            q * math.sqrt(800 / math.log(800)))

    def test_path_cost_linear(self):
        assert access_cost_rgg("PATH", 800, 28) == pytest.approx(1.7 * 28)

    def test_sampling_most_expensive(self):
        q, n = 28, 800
        costs = {s: access_cost_rgg(s, n, q)
                 for s in ("RANDOM", "RANDOM-SAMPLING", "PATH", "FLOODING")}
        assert costs["RANDOM-SAMPLING"] == max(costs.values())
        assert costs["PATH"] < costs["RANDOM"]

    def test_lemma_5_6_ratio(self):
        # Paper example: tau=10, Cost_a=D=5, Cost_l=1 -> ratio 1/2.
        assert optimal_size_ratio(10, 5.0, 1.0) == pytest.approx(0.5)

    def test_optimal_lookup_size_minimises_total(self):
        n, eps, tau, ca, cl = 800, 0.1, 10.0, 5.0, 1.0
        ql_star = optimal_lookup_size(n, eps, tau, ca, cl)
        product = required_quorum_product(n, eps)

        def total(ql):
            qa = product / ql
            return total_cost(100, qa, ca, int(100 * tau), ql, cl)

        assert total(ql_star) <= total(ql_star * 1.3) + 1e-6
        assert total(ql_star) <= total(ql_star * 0.7) + 1e-6

    def test_figure3_table_rows(self):
        rows = figure3_table(800)
        assert len(rows) == 6
        names = {r["strategy"] for r in rows}
        assert "UNIQUE-PATH" in names

    def test_figure6_random_mix_beats_path_path(self):
        combos = {(c.advertise, c.lookup): c for c in figure6_table(800)}
        rand_path = combos[("RANDOM", "PATH")]
        path_path = combos[("PATH", "PATH")]
        assert rand_path.lookup_cost < path_path.lookup_cost

    def test_combination_cost_combined(self):
        c = combination_cost("RANDOM", "PATH", 800)
        assert c.combined == pytest.approx(c.advertise_cost + c.lookup_cost)

    def test_per_node_cost(self):
        assert per_node_access_cost("PATH", 800, 28) == pytest.approx(1.7)


class TestFloodingModel:
    def test_ttl_zero_covers_origin(self):
        assert expected_coverage(100, 10, 0) == 1.0

    def test_coverage_monotone(self):
        covs = [expected_coverage(1000, 10, t) for t in range(1, 8)]
        assert covs == sorted(covs)

    def test_coverage_capped_at_n(self):
        assert expected_coverage(50, 10, 100) == 50.0

    def test_granularity_shape_matches_paper(self):
        # CG(3) > 2; CG(4) between 1.25 and 1.9 (Figure 5).
        cg3 = coverage_granularity(10_000, 10, 3)
        cg4 = coverage_granularity(10_000, 10, 4)
        assert cg3 > 2.0
        assert 1.25 <= cg4 <= 1.9

    def test_ttl_for_coverage_reaches_target(self):
        ttl = ttl_for_coverage(800, 10, 56)
        assert expected_coverage(800, 10, ttl) >= 56
        assert expected_coverage(800, 10, ttl - 1) < 56

    def test_ttl_for_single_node(self):
        assert ttl_for_coverage(800, 10, 1) == 0

    def test_ttl_for_impossible_target(self):
        with pytest.raises(ValueError):
            ttl_for_coverage(50, 10, 100)


class TestResilience:
    def test_fault_tolerance_formula(self):
        # Size k*sqrt(n): tolerance n - k sqrt(n) + 1 (Section 3).
        n, k = 400, 2
        q = k * 20
        assert fault_tolerance(n, q) == n - q + 1

    def test_fault_tolerance_is_omega_n(self):
        assert fault_tolerance(10_000, 200) > 9_000

    def test_failure_probability_tiny_for_small_p(self):
        assert failure_probability_bound(1000, 2.0, 0.3) < 1e-10

    def test_failure_probability_vacuous_for_huge_p(self):
        assert failure_probability_bound(100, 2.0, 0.9) == 1.0

    def test_min_degree_is_ln_n(self):
        assert min_degree_for_connectivity(1000) == pytest.approx(
            math.log(1000))

    def test_survivable_failures_paper_example(self):
        # n=1000, d_avg=14: about half the nodes may fail (Section 6.1).
        surv = survivable_failures(1000, 14.0)
        assert 300 <= surv <= 650

    def test_denser_network_survives_more(self):
        assert survivable_failures(1000, 20.0) > survivable_failures(
            1000, 10.0)

    def test_network_size_estimation(self):
        import random as _r
        rng = _r.Random(0)
        n = 500
        samples = [rng.randrange(n) for _ in range(
            samples_for_size_estimate(n, target_collisions=30))]
        est = estimate_network_size(samples)
        assert 0.5 * n <= est <= 2.0 * n

    def test_estimate_inf_without_collisions(self):
        assert math.isinf(estimate_network_size([1, 2, 3, 4]))

    def test_estimate_needs_two_samples(self):
        with pytest.raises(ValueError):
            estimate_network_size([1])
