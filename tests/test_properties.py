"""Property-based tests (hypothesis) on the library's core invariants."""

import math
import random
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    intersection_after_churn,
    miss_probability_bound,
    miss_probability_exact,
    required_quorum_product,
)
from repro.core import UniquePathStrategy, plan_sizes, RandomStrategy
from repro.membership import FullMembership
from repro.randomwalk import random_walk, reverse_path_of, send_reply
from repro.simnet import NetworkConfig, SimNetwork


def _hypergeometric_miss(qa: int, ql: int, n: int) -> float:
    """Reference: C(n - ql, qa) / C(n, qa)."""
    if qa + ql > n:
        return 0.0
    return math.comb(n - ql, qa) / math.comb(n, qa)


class TestIntersectionProperties:
    @given(st.integers(2, 400), st.integers(0, 40), st.integers(0, 40))
    @settings(max_examples=80)
    def test_exact_matches_hypergeometric(self, n, qa, ql):
        qa, ql = min(qa, n), min(ql, n)
        assert miss_probability_exact(qa, ql, n) == pytest.approx(
            _hypergeometric_miss(qa, ql, n), abs=1e-12)

    @given(st.integers(4, 400), st.floats(0.01, 0.5))
    @settings(max_examples=60)
    def test_planned_product_meets_corollary(self, n, eps):
        net = None  # strategies don't need the net for planning
        sizing = plan_sizes(n, eps, RandomStrategy(None),
                            UniquePathStrategy())
        if sizing.advertise_size < n and sizing.lookup_size < n:
            assert sizing.product >= required_quorum_product(n, eps) - 1

    @given(st.integers(4, 400), st.floats(0.01, 0.5))
    @settings(max_examples=60)
    def test_planned_sizes_guarantee_epsilon(self, n, eps):
        sizing = plan_sizes(n, eps, RandomStrategy(None),
                            UniquePathStrategy())
        qa = min(sizing.advertise_size, n)
        ql = min(sizing.lookup_size, n)
        if qa < n and ql < n:
            assert miss_probability_exact(qa, ql, n) <= eps + 1e-9

    @given(st.floats(0.01, 0.5), st.floats(0.0, 0.9))
    @settings(max_examples=60)
    def test_degradation_in_unit_interval(self, eps, f):
        for mode in ("failures-constant", "failures-adjusted",
                     "joins-constant", "joins-adjusted", "both"):
            val = intersection_after_churn(eps, f, mode)
            assert 0.0 <= val <= 1.0

    @given(st.floats(0.01, 0.5), st.floats(0.0, 0.8), st.floats(0.0, 0.19))
    @settings(max_examples=60)
    def test_degradation_monotone_in_f(self, eps, f, df):
        for mode in ("joins-constant", "both", "failures-adjusted"):
            assert (intersection_after_churn(eps, f + df, mode)
                    <= intersection_after_churn(eps, f, mode) + 1e-12)

    @given(st.integers(10, 300), st.integers(1, 15), st.integers(1, 15))
    @settings(max_examples=60)
    def test_bound_dominates_exact(self, n, qa, ql):
        qa, ql = min(qa, n), min(ql, n)
        assert (miss_probability_exact(qa, ql, n)
                <= miss_probability_bound(qa, ql, n) + 1e-12)


class TestNetworkStructuralProperties:
    @given(st.integers(0, 30), st.integers(1, 4))
    @settings(max_examples=12, deadline=None)
    def test_flood_covers_exact_bfs_ball(self, seed, ttl):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=seed % 6))
        origin = seed % net.n_alive
        outcome = net.flood(origin, ttl=ttl)
        # Ground-truth BFS ball of radius ttl.
        dist = {origin: 0}
        queue = deque([origin])
        while queue:
            u = queue.popleft()
            if dist[u] >= ttl:
                continue
            for v in net.true_neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        assert outcome.covered == dist

    @given(st.integers(0, 30))
    @settings(max_examples=12, deadline=None)
    def test_route_path_is_shortest(self, seed):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=seed % 6))
        src, dst = 0, net.n_alive - 1
        result = net.route(src, dst)
        if not result.success:
            return
        dist = {src: 0}
        queue = deque([src])
        while queue:
            u = queue.popleft()
            for v in net.true_neighbors(u):
                if v not in dist:
                    dist[v] = dist[u] + 1
                    queue.append(v)
        assert result.hops == dist[dst]

    @given(st.integers(0, 40), st.integers(3, 25))
    @settings(max_examples=12, deadline=None)
    def test_walk_then_reply_invariants(self, seed, target):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=seed % 6))
        walk = random_walk(net, 0, target_unique=min(target, 30),
                           rng=random.Random(seed))
        if not walk.completed:
            return
        rpath = reverse_path_of(walk.path)
        reply = send_reply(net, rpath)
        # Static network: replies always arrive, never longer than the path.
        assert reply.success
        assert reply.hops_taken <= len(rpath) - 1
        assert reply.nodes_traversed[0] == rpath[0]
        assert reply.nodes_traversed[-1] == rpath[-1]

    @given(st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_unique_walk_message_bound(self, seed):
        net = SimNetwork(NetworkConfig(n=60, avg_degree=10, seed=seed % 6))
        walk = random_walk(net, 0, target_unique=12, unique=True,
                           rng=random.Random(seed))
        if walk.completed:
            # A self-avoiding walk in a static net: steps == unique - 1
            # unless it ever got trapped and fell back to a random hop.
            assert walk.steps >= walk.unique_count - 1
            assert walk.messages == walk.steps  # no salvation needed


class TestBiquorumEndToEndProperty:
    @given(st.integers(0, 8), st.floats(0.05, 0.3))
    @settings(max_examples=6, deadline=None)
    def test_empirical_intersection_respects_epsilon(self, seed, eps):
        from repro.core import ProbabilisticBiquorum

        net = SimNetwork(NetworkConfig(n=80, avg_degree=10, seed=seed))
        membership = FullMembership(net)
        bq = ProbabilisticBiquorum(
            net, advertise=RandomStrategy(membership),
            lookup=UniquePathStrategy(), epsilon=eps)
        rng = random.Random(seed)
        hits = 0
        trials = 8
        for _ in range(trials):
            stored = set()
            bq.write(net.random_alive_node(rng), stored.add)
            res = bq.read(net.random_alive_node(rng),
                          lambda v: "x" if v in stored else None)
            hits += bool(res.found)
        # Bernoulli(>= 1 - eps) over 8 trials: allow generous slack, but
        # catastrophic failures (more than half missing) must not happen.
        assert hits >= trials // 2
