"""Unit tests for the network-layer pieces not covered end-to-end:
flooding agent dedup/TTL mechanics, packet id allocation, stack node
dispatch including the raw-payload hook."""

import math
import random

import pytest

from repro.mac import MacLayer, MacParams
from repro.net import FloodPacket, next_packet_id
from repro.net.flooding import FloodingAgent
from repro.phy import SINRChannel
from repro.sim import Simulator
from repro.stack import AdhocStack, StackConfig


class _Env:
    def __init__(self, positions):
        self.positions = dict(positions)
        self.dead = set()

    def position_of(self, node_id):
        return self.positions[node_id]

    def nodes_near(self, pos, radius):
        return [nid for nid, p in self.positions.items()
                if nid not in self.dead
                and math.hypot(p[0] - pos[0], p[1] - pos[1]) <= radius]

    def is_alive(self, node_id):
        return node_id not in self.dead

    def distance(self, a, b):
        return math.hypot(a[0] - b[0], a[1] - b[1])


def build_flooders(positions):
    sim = Simulator()
    env = _Env(positions)
    channel = SINRChannel(sim, env)
    delivered = {nid: [] for nid in positions}
    agents = {}
    for nid in positions:
        mac = MacLayer(sim, channel, nid,
                       deliver=lambda p, s, n=nid: agents[n].on_payload(p, s),
                       rng=random.Random(nid))
        agents[nid] = FloodingAgent(
            sim, mac, nid,
            deliver=lambda payload, pkt, n=nid: delivered[n].append(payload),
            rng=random.Random(nid + 100))
    return sim, env, agents, delivered


class TestPacketIds:
    def test_ids_unique_and_increasing(self):
        a, b, c = next_packet_id(), next_packet_id(), next_packet_id()
        assert a < b < c


class TestFloodingAgent:
    # A line of nodes 150m apart: node i only hears i-1 and i+1.
    LINE = {i: (i * 150.0, 0.0) for i in range(5)}

    def test_originator_delivers_locally(self):
        sim, env, agents, delivered = build_flooders(self.LINE)
        agents[0].originate("hi", ttl=1)
        sim.run(until=1.0)
        assert "hi" in delivered[0]

    def test_ttl_limits_propagation_on_line(self):
        sim, env, agents, delivered = build_flooders(self.LINE)
        agents[0].originate("hop2", ttl=2)
        sim.run(until=3.0)
        assert "hop2" in delivered[1]
        assert "hop2" in delivered[2]
        assert "hop2" not in delivered[3]

    def test_full_ttl_floods_line(self):
        sim, env, agents, delivered = build_flooders(self.LINE)
        agents[0].originate("all", ttl=10)
        sim.run(until=5.0)
        assert all("all" in delivered[i] for i in self.LINE)

    def test_duplicate_suppression_single_delivery(self):
        # Triangle: everyone hears everyone; each must deliver once.
        tri = {0: (0, 0), 1: (100, 0), 2: (50, 80)}
        sim, env, agents, delivered = build_flooders(tri)
        agents[0].originate("once", ttl=3)
        sim.run(until=3.0)
        for nid in tri:
            assert delivered[nid].count("once") == 1

    def test_rebroadcast_counting(self):
        sim, env, agents, delivered = build_flooders(self.LINE)
        agents[0].originate("x", ttl=10)
        sim.run(until=5.0)
        rebroadcasts = sum(a.rebroadcasts for a in agents.values())
        # Nodes 1..3 rebroadcast (node 4 receives with ttl exhausted or
        # rebroadcasts into emptiness); originator counts separately.
        assert rebroadcasts >= 3

    def test_invalid_ttl(self):
        sim, env, agents, delivered = build_flooders(self.LINE)
        with pytest.raises(ValueError):
            agents[0].originate("bad", ttl=0)

    def test_non_flood_payload_ignored(self):
        sim, env, agents, delivered = build_flooders(self.LINE)
        agents[0].on_payload("not-a-flood-packet", 1)  # must not raise
        assert delivered[0] == []


class TestStackNodeDispatch:
    def test_raw_handler_receives_unknown_payloads(self):
        stack = AdhocStack(StackConfig(n=6, avg_degree=10, seed=3))
        got = []
        for node in stack.nodes.values():
            node.raw_handler = lambda p, f, n=node.node_id: got.append(
                (n, p, f))
        stack.run(0.2)
        stack.nodes[0].mac.send_broadcast("hello-raw")
        stack.run(1.0)
        receivers = {n for n, p, f in got if p == "hello-raw"}
        assert receivers  # neighbors got the raw payload

    def test_raw_handler_not_called_for_routed_data(self):
        stack = AdhocStack(StackConfig(n=8, avg_degree=10, seed=4))
        raw = []
        for node in stack.nodes.values():
            node.raw_handler = lambda p, f: raw.append(p)
        stack.run(0.3)
        stack.send(0, 5, "routed")
        stack.run(4.0)
        assert "routed" not in raw
        assert ("routed", 0) in stack.delivered_to(5)

    def test_crashed_node_stops_dispatching(self):
        stack = AdhocStack(StackConfig(n=6, avg_degree=10, seed=5))
        got = []
        victim = 3
        stack.nodes[victim].raw_handler = lambda p, f: got.append(p)
        stack.crash(victim)
        stack.run(0.2)
        stack.nodes[0].mac.send_broadcast("after-crash")
        stack.run(1.0)
        assert got == []
