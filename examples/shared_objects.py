#!/usr/bin/env python3
"""Higher-level services on probabilistic quorums (Section 10):

* a probabilistically linearizable read/write register (ABD-style, two
  quorum phases per operation);
* a publish/subscribe service where subscriptions live on advertise
  quorums and events are matched on lookup quorums.

Run:  python examples/shared_objects.py
"""

from repro import (
    FullMembership,
    NetworkConfig,
    ProbabilisticBiquorum,
    ProbabilisticRegister,
    PubSubService,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
)


def build_biquorum(seed: int) -> ProbabilisticBiquorum:
    net = SimNetwork(NetworkConfig(n=150, avg_degree=10, seed=seed))
    membership = FullMembership(net)
    # Registers and pub/sub need collecting reads: disable early halting so
    # the query phase sees the whole lookup quorum.
    return ProbabilisticBiquorum(
        net,
        advertise=RandomStrategy(membership),
        lookup=UniquePathStrategy(early_halting=False),
        epsilon=0.05,
    )


def register_demo() -> None:
    print("== probabilistic read/write register ==")
    register = ProbabilisticRegister(build_biquorum(seed=31))
    w1 = register.write(origin=0, value="v1")
    print(f"node 0 wrote 'v1' at ts={w1.timestamp} "
          f"({w1.messages} msgs over 2 quorum phases)")
    r1 = register.read(origin=75)
    print(f"node 75 read {r1.value!r} at ts={r1.timestamp}")
    w2 = register.write(origin=120, value="v2")
    r2 = register.read(origin=40)
    print(f"node 120 wrote 'v2'; node 40 now reads {r2.value!r} "
          f"(last write wins, ts={r2.timestamp})")


def pubsub_demo() -> None:
    print("\n== quorum-based publish/subscribe ==")
    pubsub = PubSubService(build_biquorum(seed=32))
    for subscriber in (5, 42, 99):
        pubsub.subscribe(subscriber, topic="alerts")
    print("nodes 5, 42, 99 subscribed to 'alerts'")

    result = pubsub.publish(publisher=130, topic="alerts",
                            event={"severity": "high"})
    print(f"publish matched {result.matched_subscribers}, "
          f"notified {result.notified_subscribers} "
          f"({result.messages} msgs)")

    pubsub.unsubscribe(42, topic="alerts")
    result2 = pubsub.publish(publisher=7, topic="alerts", event="second")
    print(f"after node 42 unsubscribed (tombstone): "
          f"notified {result2.notified_subscribers}")


if __name__ == "__main__":
    register_demo()
    pubsub_demo()
