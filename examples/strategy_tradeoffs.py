#!/usr/bin/env python3
"""Compare the quorum access strategy mixes (a miniature of the paper's
Figures 15/16) and apply Lemma 5.6 to pick the cost-optimal sizing for a
lookup-heavy workload.

Run:  python examples/strategy_tradeoffs.py
"""

import math
import random

from repro import (
    FloodingStrategy,
    NetworkConfig,
    ProbabilisticBiquorum,
    RandomMembership,
    RandomOptStrategy,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
    optimal_size_ratio,
)
from repro.experiments import format_table, make_membership, run_scenario


def evaluate(n: int, lookup_name: str, seed: int = 5):
    net = SimNetwork(NetworkConfig(n=n, avg_degree=10, seed=seed))
    membership = RandomMembership(net)
    lookups = {
        "RANDOM": RandomStrategy(membership),
        "RANDOM-OPT": RandomOptStrategy(membership),
        "UNIQUE-PATH": UniquePathStrategy(),
        "FLOODING": FloodingStrategy(),
    }
    qa = max(1, round(2.0 * math.sqrt(n)))
    ql = max(1, round(1.15 * math.sqrt(n)))
    stats = run_scenario(
        net,
        advertise_strategy=RandomStrategy(membership),
        lookup_strategy=lookups[lookup_name],
        advertise_size=qa, lookup_size=ql,
        n_keys=8, n_lookups=50, miss_fraction=0.2, seed=seed + 1)
    return stats


def main() -> None:
    n = 200
    print(f"RANDOM advertise (|Qa|=2sqrt(n)) with four lookup strategies, "
          f"n={n}:\n")
    rows = []
    for name in ("RANDOM", "RANDOM-OPT", "UNIQUE-PATH", "FLOODING"):
        stats = evaluate(n, name)
        rows.append((name, f"{stats.hit_ratio:.2f}",
                     f"{stats.avg_lookup_messages:.1f}",
                     f"{stats.avg_lookup_routing:.1f}",
                     f"{stats.avg_lookup_messages_on_hit:.1f}",
                     f"{stats.avg_lookup_messages_on_miss:.1f}"))
    print(format_table(
        ["lookup strategy", "hit ratio", "msgs", "routing",
         "msgs(hit)", "msgs(miss)"], rows))

    print("\nThe paper's conclusion reproduced: UNIQUE-PATH gives the same "
          "intersection at a fraction of the messages,\nwith zero routing "
          "dependence — RANDOM(-OPT) pay heavily for AODV.")

    # Lemma 5.6: size asymmetric quorums for a lookup-heavy workload.
    tau = 10.0
    cost_a, cost_l = 12.0, 1.0  # per-node costs (routing vs walk hop)
    ratio = optimal_size_ratio(tau, cost_a, cost_l)
    print(f"\nLemma 5.6 for tau={tau:.0f} (lookup:advertise), "
          f"Cost_a={cost_a}, Cost_l={cost_l}:")
    side = "advertise" if ratio > 1 else "lookup"
    factor = max(ratio, 1 / ratio)
    print(f"  optimal |Ql|/|Qa| = {ratio:.2f} -> make the {side} quorum "
          f"{factor:.1f}x smaller than the other side.")


if __name__ == "__main__":
    main()
