#!/usr/bin/env python3
"""Face-off: probabilistic quorums vs the alternatives the paper argues
against — strict majority quorums, a strict grid biquorum, and a
geographic (GHT-style) location service.

Each system serves the same workload, then the network churns and the
lookups repeat.  Watch: the strict grid breaks without reconfiguration,
geographic hashing needs GPS and decays, majority pays enormously, and the
probabilistic biquorum just keeps working.

Run:  python examples/baseline_faceoff.py
"""

import random

from repro import (
    LocationService,
    NetworkConfig,
    ProbabilisticBiquorum,
    RandomMembership,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
    apply_churn,
)
from repro.baselines import (
    GeographicLocationService,
    GridConfiguration,
    GridStrategy,
)
from repro.experiments import format_table

N = 150
KEYS = [f"svc-{i}" for i in range(6)]


def workload(advertise, lookup, churn_fn, rng):
    """Advertise all keys, churn, then measure hit ratio and cost."""
    adv_msgs = sum(advertise(key) for key in KEYS)
    churn_fn()
    hits = 0
    look_msgs = 0
    for i in range(30):
        found, msgs = lookup(rng.choice(KEYS))
        hits += found
        look_msgs += msgs
    return hits / 30, adv_msgs / len(KEYS), look_msgs / 30


def probabilistic_system(seed, rng):
    net = SimNetwork(NetworkConfig(n=N, avg_degree=12, seed=seed))
    membership = RandomMembership(net)
    svc = LocationService(ProbabilisticBiquorum(
        net, advertise=RandomStrategy(membership),
        lookup=UniquePathStrategy(), epsilon=0.1))

    def advertise(key):
        r = svc.advertise(net.random_alive_node(rng), key, key)
        return r.access.messages

    def lookup(key):
        r = svc.lookup(net.random_alive_node(rng), key)
        return r.found, r.messages

    def churn():
        apply_churn(net, fail_fraction=0.15, join_fraction=0.15,
                    rng=rng, keep_connected=True)
        membership.refresh()

    return advertise, lookup, churn


def grid_system(seed, rng):
    net = SimNetwork(NetworkConfig(n=N, avg_degree=12, seed=seed))
    grid = GridConfiguration(net)
    svc = LocationService(ProbabilisticBiquorum(
        net, advertise=GridStrategy(grid, "row"),
        lookup=GridStrategy(grid, "column"),
        advertise_size=grid.side, lookup_size=grid.side,
        adjust_to_network_size=False))

    def advertise(key):
        r = svc.advertise(net.random_alive_node(rng), key, key)
        return r.access.messages

    def lookup(key):
        r = svc.lookup(net.random_alive_node(rng), key)
        return r.found, r.messages

    def churn():
        apply_churn(net, fail_fraction=0.15, join_fraction=0.15,
                    rng=rng, keep_connected=True)
        # Deliberately NOT reconfiguring the grid: strictness decays.

    return advertise, lookup, churn


def geographic_system(seed, rng):
    net = SimNetwork(NetworkConfig(n=N, avg_degree=12, seed=seed))
    geo = GeographicLocationService(net)

    def advertise(key):
        return geo.advertise(net.random_alive_node(rng), key, key).messages

    def lookup(key):
        r = geo.lookup(net.random_alive_node(rng), key)
        return r.success, r.messages

    def churn():
        apply_churn(net, fail_fraction=0.15, join_fraction=0.15,
                    rng=rng, keep_connected=True)

    return advertise, lookup, churn


def main() -> None:
    rows = []
    systems = [
        ("probabilistic biquorum", probabilistic_system),
        ("strict grid (no reconfig)", grid_system),
        ("geographic GHT (needs GPS)", geographic_system),
    ]
    for name, factory in systems:
        rng = random.Random(7)
        advertise, lookup, churn = factory(seed=21, rng=rng)
        hit, adv_cost, look_cost = workload(advertise, lookup, churn, rng)
        rows.append((name, f"{hit:.2f}", f"{adv_cost:.0f}",
                     f"{look_cost:.1f}"))
    print("after 30% membership churn (15% fail + 15% join):\n")
    print(format_table(
        ["system", "hit ratio", "msgs/advertise", "msgs/lookup"], rows))
    print("\nthe probabilistic biquorum needs no reconfiguration, no GPS, "
          "and no routing on the lookup side —\nexactly the paper's case "
          "for probabilistic quorums in ad hoc networks.")


if __name__ == "__main__":
    main()
