#!/usr/bin/env python3
"""Drive the packet-level stack: SINR radio + CSMA/CA MAC + AODV + flooding.

This is the high-fidelity substrate (the JiST/SWANS equivalent) that
validates the graph-level simulator: real frames, carrier sensing,
acknowledgments, retries, route discovery floods.

Run:  python examples/packet_level_stack.py
"""

from repro.stack import AdhocStack, StackConfig


def main() -> None:
    stack = AdhocStack(StackConfig(n=25, avg_degree=10, seed=42,
                                   channel="sinr"))
    print(f"deployed {len(stack.nodes)} nodes on a "
          f"{stack.config.side:.0f}m x {stack.config.side:.0f}m field "
          f"(two-ray ground, 200m range)")
    stack.run(0.5)

    # Multi-hop unicast via AODV.
    stack.send(0, 20, {"kind": "hello", "seq": 1})
    stack.run(5.0)
    delivered = stack.delivered_to(20)
    print(f"node 20 received: {delivered}")
    print(f"AODV control messages so far: "
          f"{stack.total_control_messages()} "
          f"(RREQ floods + RREPs)")

    # Reusing the discovered route is nearly free.
    before = stack.total_control_messages()
    stack.send(0, 20, {"kind": "hello", "seq": 2})
    stack.run(3.0)
    print(f"second send reused the route: "
          f"+{stack.total_control_messages() - before} control messages")

    # TTL-scoped flooding.
    stack.flood(5, "flood-announcement", ttl=2)
    stack.run(3.0)
    receivers = {d for d, p, s in stack.received
                 if p == "flood-announcement"}
    print(f"TTL-2 flood from node 5 covered {len(receivers)} nodes")

    # Crash a relay and watch AODV recover.
    victim = 10
    stack.crash(victim)
    print(f"crashed node {victim}; sending again...")
    stack.send(0, 20, {"kind": "hello", "seq": 3})
    stack.run(8.0)
    seq3 = [p for p, s in stack.delivered_to(20)
            if isinstance(p, dict) and p.get("seq") == 3]
    print(f"delivery after crash: {'ok' if seq3 else 'lost'} "
          f"(total MAC frames on air: {stack.total_mac_frames()})")


if __name__ == "__main__":
    main()
