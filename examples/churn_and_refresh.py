#!/usr/bin/env python3
"""Surviving churn: degradation analysis driving a refresh schedule
(Section 6.1 end to end).

Publishes data, then repeatedly churns the network (fail + join).  One
service refreshes on the schedule derived from the degradation-rate
closed forms; a control service never refreshes.  The refreshed service
keeps its intersection probability near the floor; the control decays.

Run:  python examples/churn_and_refresh.py
"""

import random

from repro import (
    LocationService,
    NetworkConfig,
    ProbabilisticBiquorum,
    RandomMembership,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
    apply_churn,
)
from repro.analysis import max_tolerable_churn, refresh_schedule
from repro.services import RefreshDaemon


def build_service(seed: int):
    net = SimNetwork(NetworkConfig(n=150, avg_degree=15, seed=seed))
    membership = RandomMembership(net)
    biquorum = ProbabilisticBiquorum(
        net, advertise=RandomStrategy(membership),
        lookup=UniquePathStrategy(), epsilon=0.05)
    return net, membership, LocationService(biquorum)


def measure_hit_ratio(net, service, keys, rng, lookups=30) -> float:
    hits = sum(
        service.lookup(net.random_alive_node(rng), rng.choice(keys)).found
        for _ in range(lookups))
    return hits / lookups


def main() -> None:
    epsilon, floor = 0.05, 0.90
    churn_step = 0.10           # 10% of nodes fail AND join per round
    round_seconds = 100.0
    churn_per_second = churn_step / round_seconds

    f_max = max_tolerable_churn(epsilon, floor, "both")
    plan = refresh_schedule(epsilon, floor, churn_per_second, "both")
    print(f"analysis: tolerate f={f_max:.2f} churn before dropping below "
          f"{floor}; refresh every {plan.refresh_interval_seconds:.0f}s")

    net_a, members_a, refreshed = build_service(seed=21)
    net_b, members_b, control = build_service(seed=21)
    daemon = RefreshDaemon(refreshed,
                           interval=plan.refresh_interval_seconds)

    rng = random.Random(7)
    keys = [f"item-{i}" for i in range(8)]
    for key in keys:
        refreshed.advertise(net_a.random_alive_node(rng), key, key)
        control.advertise(net_b.random_alive_node(rng), key, key)

    print(f"\n{'round':>5} {'churned':>8} {'refreshed svc':>14} "
          f"{'control svc':>12}")
    churn_rng = random.Random(99)
    for rnd in range(1, 6):
        for net, members in ((net_a, members_a), (net_b, members_b)):
            apply_churn(net, fail_fraction=churn_step,
                        join_fraction=churn_step, rng=churn_rng,
                        keep_connected=True)
            members.refresh()
        net_a.advance(round_seconds)  # daemon fires when due
        net_b.advance(round_seconds)
        ratio_a = measure_hit_ratio(net_a, refreshed, keys, rng)
        ratio_b = measure_hit_ratio(net_b, control, keys, rng)
        print(f"{rnd:>5} {rnd * churn_step:>7.0%} {ratio_a:>14.2f} "
              f"{ratio_b:>12.2f}")

    daemon.stop()
    print(f"\nrefresh rounds run: {daemon.stats.rounds}, "
          f"items readvertised: {daemon.stats.readvertised}")
    print("the refreshed service holds its intersection probability; "
          "the control decays as eps^(1-f) predicts (Figure 7).")


if __name__ == "__main__":
    main()
