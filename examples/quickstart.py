#!/usr/bin/env python3
"""Quickstart: an asymmetric probabilistic biquorum as a location service.

Builds a 200-node static ad hoc network, advertises a mapping through a
RANDOM quorum, and looks it up from the other side of the network with a
UNIQUE-PATH (self-avoiding random walk) quorum — the strategy mix the
paper found most efficient.

Run:  python examples/quickstart.py
"""

from repro import (
    FullMembership,
    LocationService,
    NetworkConfig,
    ProbabilisticBiquorum,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
)


def main() -> None:
    net = SimNetwork(NetworkConfig(n=200, avg_degree=10, seed=7))
    print(f"deployed {net.n_alive} nodes, connected={net.is_connected()}")

    membership = FullMembership(net)
    biquorum = ProbabilisticBiquorum(
        net,
        advertise=RandomStrategy(membership),   # uniform random side
        lookup=UniquePathStrategy(),            # cheap random-walk side
        epsilon=0.1,                            # >= 0.9 intersection
    )
    sizing = biquorum.sizing
    print(f"quorum sizes: |Qa|={sizing.advertise_size} "
          f"|Ql|={sizing.lookup_size} (epsilon={sizing.epsilon:.3f})")

    service = LocationService(biquorum)

    receipt = service.advertise(origin=0, key="color-printer",
                                value={"location": (120.0, 300.0)})
    print(f"advertised to {len(receipt.quorum)} nodes "
          f"using {receipt.messages} network messages")

    looker = next(v for v in net.alive_nodes()
                  if v not in receipt.quorum and v != 0)
    lookup = service.lookup(origin=looker, key="color-printer")
    print(f"lookup from node {looker}: found={lookup.found} "
          f"value={lookup.value} in {lookup.messages} messages")

    missing = service.lookup(origin=42, key="fax-machine")
    print(f"lookup for absent key: found={missing.found} "
          f"(paid {missing.messages} messages for the full quorum)")


if __name__ == "__main__":
    main()
