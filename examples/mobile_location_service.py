#!/usr/bin/env python3
"""Resource discovery in a *mobile* ad hoc network (the paper's driving
application, Sections 6.2 & 8.6).

A fleet of 150 walking nodes (random waypoint, up to 10 m/s) publishes
service records; other nodes discover them while everyone keeps moving.
Demonstrates the mobility defenses: RW salvation, reply-path reduction,
and reply-path local repair, plus bystander caching for popular keys.

Run:  python examples/mobile_location_service.py
"""

import random

from repro import (
    LocationService,
    NetworkConfig,
    ProbabilisticBiquorum,
    RandomMembership,
    RandomStrategy,
    SimNetwork,
    UniquePathStrategy,
)


def main() -> None:
    net = SimNetwork(NetworkConfig(
        n=150, avg_degree=10, seed=11,
        mobility="waypoint", min_speed=0.5, max_speed=10.0,
        pause_time=30.0, hop_latency=0.02,
    ))
    membership = RandomMembership(net)  # RaWMS-style 2*sqrt(n) views
    biquorum = ProbabilisticBiquorum(
        net,
        advertise=RandomStrategy(membership),
        lookup=UniquePathStrategy(
            salvation=True,        # retry another neighbor on MAC failure
            reply_reduction=True,  # shortcut the reverse reply path
            local_repair=True,     # TTL-3 scoped repair of broken replies
        ),
        epsilon=0.1,
    )
    service = LocationService(biquorum, enable_caching=True)

    rng = random.Random(3)
    services = ["printer", "projector", "gateway", "coffee", "storage"]
    for name in services:
        origin = net.random_alive_node(rng)
        receipt = service.advertise(origin, name, f"{name}@node{origin}")
        print(f"[t={net.now:7.2f}s] node {origin:3} advertised {name!r} "
              f"to {len(receipt.quorum)} nodes "
              f"({receipt.messages} msgs)")

    # Let everyone wander for a while; links break and heal.
    net.advance(120.0)

    hits = 0
    total_messages = 0
    lookups = 40
    for i in range(lookups):
        looker = net.random_alive_node(rng)
        key = rng.choice(services)
        result = service.lookup(looker, key)
        hits += result.found
        total_messages += result.messages
        if i < 5:
            print(f"[t={net.now:7.2f}s] node {looker:3} looked up "
                  f"{key!r}: found={result.found} "
                  f"cached={result.from_cache} ({result.messages} msgs)")

    print(f"\nhit ratio over {lookups} mobile lookups: {hits / lookups:.2f}")
    print(f"average messages per lookup: {total_messages / lookups:.1f} "
          f"(lookup quorum size {biquorum.sizing.lookup_size})")
    print(f"network message counters: {dict(net.counters)}")


if __name__ == "__main__":
    main()
